package testbed

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
)

// SynthOptions sizes the synthesis-layer benchmark experiment.
type SynthOptions struct {
	// MaxClients is the number of scenes (client positions) measured.
	MaxClients int
	// Sites indexes the AP sites contributing to every scene.
	Sites []int
	// Cells are the grid pitches swept for the speedup table.
	Cells []float64
	// Workers are the shard pool sizes swept per pitch.
	Workers []int
	// Trials is the timing repeat count (best-of).
	Trials int
	// Seed drives capture noise.
	Seed int64
}

// DefaultSynthOptions measures the paper's 10 cm pitch plus two
// coarser ones, at shard pool sizes up to the machine width.
func DefaultSynthOptions() SynthOptions {
	workers := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workers = append(workers, p)
	}
	return SynthOptions{
		MaxClients: 5,
		Sites:      []int{0, 2, 4},
		Cells:      []float64{0.50, 0.25, 0.10},
		Workers:    workers,
		Trials:     3,
		Seed:       1,
	}
}

func bestOf(trials int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < trials; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// synthScenes builds the per-scene AP spectra (one scene per sampled
// client, all requested sites contributing).
func (tb *Testbed) synthScenes(opt SynthOptions) ([][]core.APSpectrum, []geom.Point, error) {
	aOpt := DefaultAccuracyOptions()
	aOpt.MaxClients = opt.MaxClients
	aOpt.Seed = opt.Seed
	specs, clients, err := tb.spectraForAll(aOpt)
	if err != nil {
		return nil, nil, err
	}
	scenes := make([][]core.APSpectrum, len(clients))
	for ci := range clients {
		for _, si := range opt.Sites {
			scenes[ci] = append(scenes[ci], core.APSpectrum{Pos: tb.Sites[si].Pos, Spectrum: specs[ci][si]})
		}
	}
	return scenes, clients, nil
}

// RunSynth benchmarks the staged synthesis subsystem against the seed
// path on real testbed scenes: full-resolution surface times per
// (grid pitch × worker count), the coarse-to-fine estimator against
// the seed grid-plus-hill-climb estimator (time and RMSE), the
// refined-vs-full argmax exactness count, and steady-state allocs.
// Emitted as metrics so `atbench -exp synth -json` extends the
// BENCH_*.json perf trajectory.
func (tb *Testbed) RunSynth(opt SynthOptions) (*Report, error) {
	scenes, clients, err := tb.synthScenes(opt)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "synth", Title: "staged heatmap synthesis: LUT + log-domain vs seed"}

	// --- full-resolution surface: seed vs grid, per pitch × workers.
	r.Addf("%6s %8s %10s %s", "cell", "cells", "seed", "grid (by workers, speedup vs seed)")
	var speedup1w, speedupNw float64
	for _, cell := range opt.Cells {
		grids := make([]*core.SynthGrid, len(opt.Workers))
		for wi, w := range opt.Workers {
			sg, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{Cell: cell, Workers: w})
			if err != nil {
				return nil, err
			}
			grids[wi] = sg
		}
		var h core.Heatmap
		for _, sc := range scenes { // warm LUTs outside the timings
			if err := grids[0].LogHeatmapInto(&h, sc); err != nil {
				return nil, err
			}
		}
		seed := bestOf(opt.Trials, func() {
			for _, sc := range scenes {
				if _, err := core.ComputeHeatmap(sc, tb.Plan.Min, tb.Plan.Max, cell); err != nil {
					panic(err)
				}
			}
		})
		row := ""
		for wi, sg := range grids {
			grid := bestOf(opt.Trials, func() {
				for _, sc := range scenes {
					if err := sg.LogHeatmapInto(&h, sc); err != nil {
						panic(err)
					}
				}
			})
			sp := float64(seed) / float64(grid)
			row += formatWorkerCol(opt.Workers[wi], grid, sp)
			if cell == opt.Cells[len(opt.Cells)-1] {
				if opt.Workers[wi] == 1 {
					speedup1w = sp
				}
				if wi == len(grids)-1 {
					speedupNw = sp
				}
			}
		}
		r.Addf("%5.2fm %8d %10s %s", cell, grids[0].Spec().Cells(), seed.Round(time.Microsecond), row)
	}

	// --- the complete estimator: coarse-to-fine + hill climb vs seed
	// grid search + hill climb, plus argmax exactness and accuracy.
	fine := opt.Cells[len(opt.Cells)-1]
	sg, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{Cell: fine, Workers: 1})
	if err != nil {
		return nil, err
	}
	matches := 0
	var gridErrCM, seedErrCM []float64
	for ci, sc := range scenes {
		full, err := sg.FullArgmaxCell(sc)
		if err != nil {
			return nil, err
		}
		refined, err := sg.RefinedArgmaxCell(sc)
		if err != nil {
			return nil, err
		}
		if full == refined {
			matches++
		}
		gpos, err := sg.Localize(sc)
		if err != nil {
			return nil, err
		}
		spos, _, err := core.Localize(sc, tb.Plan.Min, tb.Plan.Max, fine)
		if err != nil {
			return nil, err
		}
		gridErrCM = append(gridErrCM, gpos.Dist(clients[ci])*100)
		seedErrCM = append(seedErrCM, spos.Dist(clients[ci])*100)
	}
	seedLoc := bestOf(opt.Trials, func() {
		for _, sc := range scenes {
			if _, _, err := core.Localize(sc, tb.Plan.Min, tb.Plan.Max, fine); err != nil {
				panic(err)
			}
		}
	})
	gridLoc := bestOf(opt.Trials, func() {
		for _, sc := range scenes {
			if _, err := sg.Localize(sc); err != nil {
				panic(err)
			}
		}
	})
	locSpeedup := float64(seedLoc) / float64(gridLoc)
	allocs := allocsPerRun(10, func() {
		if _, err := sg.Localize(scenes[0]); err != nil {
			panic(err)
		}
	})

	matchPct := 100 * float64(matches) / float64(len(scenes))
	gridRMSE := stats.Median(gridErrCM)
	seedRMSE := stats.Median(seedErrCM)
	r.Addf("estimator over %d scenes @ %.2fm: seed %s, coarse-to-fine %s (%.1fx)",
		len(scenes), fine, seedLoc.Round(time.Microsecond), gridLoc.Round(time.Microsecond), locSpeedup)
	r.Addf("refined argmax == full argmax on %d/%d scenes (%.0f%%)", matches, len(scenes), matchPct)
	r.Addf("median error: coarse-to-fine %.0f cm, seed %.0f cm", gridRMSE, seedRMSE)
	r.Addf("steady-state allocs/op (Localize, 1 worker): %.0f", allocs)

	r.AddMetric("synth_speedup_1w", speedup1w, "x")
	r.AddMetric("synth_speedup_maxw", speedupNw, "x")
	r.AddMetric("synth_localize_speedup", locSpeedup, "x")
	r.AddMetric("synth_argmax_match_pct", matchPct, "%")
	r.AddMetric("synth_median_err_grid_cm", gridRMSE, "cm")
	r.AddMetric("synth_median_err_seed_cm", seedRMSE, "cm")
	r.AddMetric("synth_localize_allocs", allocs, "allocs/op")
	return r, nil
}

func formatWorkerCol(workers int, d time.Duration, speedup float64) string {
	return fmt.Sprintf("  %dw:%s (%.1fx)", workers, d.Round(time.Microsecond), speedup)
}
