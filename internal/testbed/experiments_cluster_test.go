package testbed

import (
	"runtime"
	"testing"
)

// clusterTestOptions shrinks the walk and sweep so the test stays
// quick while still crossing the mid-burst migration with a live
// pending group.
func clusterTestOptions() ClusterOptions {
	opt := DefaultClusterOptions()
	opt.Steps = 8
	opt.MigrateStep = 4
	opt.Sites = []int{0, 1, 3, 5}
	opt.ThroughputClients = 8
	opt.ThroughputFixes = 2
	opt.MaxShards = min(2, runtime.GOMAXPROCS(0))
	return opt
}

// TestRunClusterMeetsTargets is the ISSUE's acceptance bar for the
// sharded-cluster tentpole: router fan-in is bit-identical to the
// single-backend control, and a mid-walk (mid-burst) 1→2 shard
// migration loses zero tracks, re-routes the pending captures, and
// produces exactly the control's fix stream (RMSE delta 0.000 cm).
func TestRunClusterMeetsTargets(t *testing.T) {
	tb := New()
	r, res, err := tb.RunCluster(clusterTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fan-in mismatches %d, migration mismatches %d, tracks lost %d, rmse delta %.3f cm, moved %d/%d/%d (clients/tracks/pending)",
		res.FanInMismatches, res.StepMismatches, res.TracksLost, res.RMSEDeltaCM,
		res.MovedClients, res.MovedTracks, res.MovedPending)
	if res.FanInMismatches != 0 {
		t.Fatalf("%d fan-in fixes diverged from the single-backend control, want 0", res.FanInMismatches)
	}
	if res.StepMismatches != 0 {
		t.Fatalf("%d migration-run fixes diverged from the control, want 0", res.StepMismatches)
	}
	if res.TracksLost != 0 {
		t.Fatalf("%d tracks lost across the migration, want 0", res.TracksLost)
	}
	if res.RMSEDeltaCM != 0 {
		t.Fatalf("migration-run RMSE differs from control by %.6f cm, want exactly 0", res.RMSEDeltaCM)
	}
	if res.MovedTracks != 1 {
		t.Fatalf("migrated %d tracks, want exactly 1 (the walker)", res.MovedTracks)
	}
	if res.MovedPending == 0 {
		t.Fatal("migration moved no pending captures — the mid-burst handoff path was not exercised")
	}
	if !res.WalkerMigrated {
		t.Fatal("walker track is not on the gaining shard (or still on the losing one)")
	}
	if res.WorkspaceLeaks != 0 {
		t.Fatalf("pooled ingest workspaces leaked: %d", res.WorkspaceLeaks)
	}
	if len(res.FixesPerSec) == 0 || res.FixesPerSec[0] <= 0 {
		t.Fatalf("throughput sweep produced no numbers: %v", res.FixesPerSec)
	}
	// Scaling is gated only with real cores to scale onto: a single-proc
	// host timeshares the shards and the ratio prices the scheduler.
	if res.Multicore && len(res.FixesPerSec) >= 2 {
		last := res.FixesPerSec[len(res.FixesPerSec)-1]
		if last < 1.25*res.FixesPerSec[0] {
			t.Fatalf("%d shards reached %.0f fixes/sec vs %.0f on one (%.2fx), want at least 1.25x on a multicore host",
				len(res.FixesPerSec), last, res.FixesPerSec[0], last/res.FixesPerSec[0])
		}
	}
	got := map[string]float64{}
	for _, m := range r.Metrics {
		got[m.Name] = m.Value
	}
	for _, name := range []string{"fan_in_mismatches", "step_mismatches", "tracks_lost",
		"rmse_delta_cm", "moved_tracks", "walker_migrated", "multicore", "fixes_per_sec_1shard"} {
		if _, ok := got[name]; !ok {
			t.Fatalf("report metric %s missing (CI gates on it)", name)
		}
	}
	if got["fan_in_mismatches"] != 0 || got["rmse_delta_cm"] != 0 || got["walker_migrated"] != 1 {
		t.Fatalf("gate metrics %v", got)
	}
}
