package testbed

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/stats"
)

// RegionsOptions sizes the ad-hoc region-query experiment.
type RegionsOptions struct {
	// MaxClients is the number of scenes (client positions) used.
	MaxClients int
	// Sites indexes the AP sites contributing to every scene.
	Sites []int
	// Cell is the full-grid pitch region queries align to.
	Cell float64
	// Regions is the number of distinct ad-hoc bounding boxes in the
	// workload.
	Regions int
	// Queries is the number of region queries replayed per budget
	// (drawn from Regions with a skewed reuse distribution, the
	// "interactive dashboard" access pattern).
	Queries int
	// Budgets are the synthesis-cache byte budgets swept for the
	// hit-rate curve.
	Budgets []int64
	// BatchJobs is the batch-lane backlog for the latency experiment;
	// PriorityJobs interactive region fixes are timed against it.
	BatchJobs, PriorityJobs int
	// Seed drives capture noise and region placement.
	Seed int64
}

// DefaultRegionsOptions measures a dashboard-like workload: dozens of
// distinct boxes, heavy reuse, budgets from starved to comfortable.
func DefaultRegionsOptions() RegionsOptions {
	return RegionsOptions{
		MaxClients:   5,
		Sites:        []int{0, 2, 4},
		Cell:         0.10,
		Regions:      50,
		Queries:      400,
		Budgets:      []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20},
		BatchJobs:    48,
		PriorityJobs: 8,
		Seed:         1,
	}
}

// regionWorkload builds r.Regions deterministic ad-hoc boxes over the
// floor, sized like interactive zoom windows (2–10 m on a side).
func regionWorkload(n int, rng *rand.Rand) []core.Region {
	out := make([]core.Region, n)
	for i := range out {
		w := 2 + rng.Float64()*8
		h := 2 + rng.Float64()*6
		x0 := rng.Float64() * (FloorW - w)
		y0 := rng.Float64() * (FloorH - h)
		out[i] = core.Region{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+w, y0+h)}
	}
	return out
}

// RunRegions benchmarks the bounded synthesis cache and the engine's
// latency lane on ad-hoc region queries: cache hit rate and accounted
// size versus byte budget under a skewed region workload, region
// argmax exactness against the restricted full grid, and the
// p50/p99 latency of priority region fixes submitted against a batch
// backlog (with a no-priority control). Emitted as metrics so
// `atbench -exp regions -json` extends the BENCH_*.json trajectory.
func (tb *Testbed) RunRegions(opt RegionsOptions) (*Report, error) {
	scenes, _, err := tb.synthScenes(SynthOptions{
		MaxClients: opt.MaxClients, Sites: opt.Sites, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "regions", Title: "ad-hoc region queries: bounded cache + latency lane"}
	rng := rand.New(rand.NewSource(opt.Seed + 100))
	regions := regionWorkload(opt.Regions, rng)

	// --- hit rate and accounted size vs budget.
	r.Addf("%10s %8s %8s %8s %9s %8s %7s", "budget", "hit%", "miss", "evict", "bytes", "peak%", "slices")
	var hitAtMax float64
	for bi, budget := range opt.Budgets {
		cache := core.NewSynthCacheBudget(budget)
		var peak int64
		// Warm the full-grid LUTs the way a live server would (full-area
		// fixes run alongside region queries): with budget to hold them,
		// region misses become row slices instead of atan2 rebuilds.
		warm, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
			Cell: opt.Cell, Workers: 1, Cache: cache,
		})
		if err != nil {
			return nil, err
		}
		if _, err := warm.RefinedArgmaxCell(scenes[0]); err != nil {
			return nil, err
		}
		// Skewed reuse: query j hits region floor(|N(0,0.25)|·n) mod n,
		// so a handful of boxes absorb most traffic — the pattern an
		// interactive floor view generates.
		qrng := rand.New(rand.NewSource(opt.Seed + 200))
		for q := 0; q < opt.Queries; q++ {
			ri := int(qrng.NormFloat64()*0.25*float64(len(regions))) % len(regions)
			if ri < 0 {
				ri = -ri
			}
			sg, err := core.NewSynthGridRegion(tb.Plan.Min, tb.Plan.Max, regions[ri], core.SynthOptions{
				Cell: opt.Cell, Workers: 1, Cache: cache,
			})
			if err != nil {
				return nil, err
			}
			if _, err := sg.Localize(scenes[q%len(scenes)]); err != nil {
				return nil, err
			}
			u := cache.Usage()
			if u.Bytes > peak {
				peak = u.Bytes
			}
			if u.Bytes > budget {
				return nil, fmt.Errorf("cache %d bytes exceeds %d budget", u.Bytes, budget)
			}
		}
		u := cache.Usage()
		hitPct := 100 * float64(u.Hits) / float64(u.Hits+u.Misses)
		r.Addf("%9dM %7.1f%% %8d %8d %9d %7.1f%% %7d",
			budget>>20, hitPct, u.Misses, u.Evictions, u.Bytes, 100*float64(peak)/float64(budget), u.Slices)
		if bi == len(opt.Budgets)-1 {
			hitAtMax = hitPct
		}
		r.AddMetric(fmt.Sprintf("regions_hit_pct_%dmib", budget>>20), hitPct, "%")
	}

	// --- region argmax exactness vs restricted full grid.
	fullGrid, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: opt.Cell, Workers: 1, Cache: core.NewSynthCache(),
	})
	if err != nil {
		return nil, err
	}
	cache := core.NewSynthCacheBudget(opt.Budgets[len(opt.Budgets)-1])
	matches, checked := 0, 0
	var h core.Heatmap
	for si, sc := range scenes {
		if err := fullGrid.LogHeatmapInto(&h, sc); err != nil {
			return nil, err
		}
		for k := 0; k < 4; k++ {
			region := regions[(si*4+k)%len(regions)]
			sg, err := core.NewSynthGridRegion(tb.Plan.Min, tb.Plan.Max, region, core.SynthOptions{
				Cell: opt.Cell, Workers: 1, Cache: cache,
			})
			if err != nil {
				return nil, err
			}
			got, err := sg.RefinedArgmaxCell(sc)
			if err != nil {
				return nil, err
			}
			if got == restrictedArgmaxCell(&h, fullGrid.Spec(), sg.Spec()) {
				matches++
			}
			checked++
		}
	}
	matchPct := 100 * float64(matches) / float64(checked)
	r.Addf("region argmax == restricted full argmax on %d/%d queries (%.0f%%)", matches, checked, matchPct)

	// --- latency lane: p50/p99 of interactive region fixes against a
	// batch backlog, priority lane on vs off.
	reqs := tb.ThroughputRequests(opt.BatchJobs, DefaultThroughputOptions())
	prioP50, prioP99, batchP99, err := tb.regionLatency(reqs, regions, opt, true)
	if err != nil {
		return nil, err
	}
	noP50, noP99, _, err := tb.regionLatency(reqs, regions, opt, false)
	if err != nil {
		return nil, err
	}
	r.Addf("interactive region fix vs %d-job backlog: priority lane p50 %.1fms p99 %.1fms, no lane p50 %.1fms p99 %.1fms, batch p99 %.1fms",
		opt.BatchJobs, prioP50, prioP99, noP50, noP99, batchP99)

	r.AddMetric("regions_hit_pct_max_budget", hitAtMax, "%")
	r.AddMetric("regions_argmax_match_pct", matchPct, "%")
	r.AddMetric("regions_prio_p50_ms", prioP50, "ms")
	r.AddMetric("regions_prio_p99_ms", prioP99, "ms")
	r.AddMetric("regions_noprio_p99_ms", noP99, "ms")
	r.AddMetric("regions_batch_p99_ms", batchP99, "ms")
	return r, nil
}

// restrictedArgmaxCell returns the argmax over the cells of sub using
// the full-grid surface h (lower flat sub-index wins ties, matching
// the grids' tie-break).
func restrictedArgmaxCell(h *core.Heatmap, full, sub core.GridSpec) int {
	best, bestV := -1, 0.0
	for iy := 0; iy < sub.Ny; iy++ {
		for ix := 0; ix < sub.Nx; ix++ {
			fx, fy := sub.X0-full.X0+ix, sub.Y0-full.Y0+iy
			if v := h.Flat[fy*full.Nx+fx]; best == -1 || v > bestV {
				best, bestV = iy*sub.Nx+ix, v
			}
		}
	}
	return best
}

// regionLatency floods an engine's batch lane with reqs, then submits
// opt.PriorityJobs interactive region fixes (priority lane on or off)
// and returns their p50/p99 plus the batch jobs' p99, in
// milliseconds.
func (tb *Testbed) regionLatency(reqs []engine.Request, regions []core.Region, opt RegionsOptions, lane bool) (p50, p99, batchP99 float64, err error) {
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = DefaultThroughputOptions().GridCell
	cfg.SynthCache = core.NewSynthCacheBudget(opt.Budgets[len(opt.Budgets)-1])
	eng := engine.New(engine.Options{Workers: 2, Queue: len(reqs) + 8, Config: cfg})
	defer eng.Close()

	// Warm caches so the timing measures queueing, not LUT builds.
	if r := eng.Locate(reqs[0]); r.Err != nil {
		return 0, 0, 0, r.Err
	}

	var mu sync.Mutex
	var batchMS, prioMS []float64
	var wg sync.WaitGroup
	submit := func(req engine.Request, out *[]float64) error {
		wg.Add(1)
		start := time.Now()
		return eng.Submit(req, func(r engine.Result) {
			ms := float64(time.Since(start)) / float64(time.Millisecond)
			mu.Lock()
			if r.Err == nil {
				*out = append(*out, ms)
			}
			mu.Unlock()
			wg.Done()
		})
	}
	for _, q := range reqs {
		if err := submit(q, &batchMS); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < opt.PriorityJobs; i++ {
		q := reqs[i%len(reqs)]
		q.Region = regions[i%len(regions)]
		q.Priority = lane
		if err := submit(q, &prioMS); err != nil {
			return 0, 0, 0, err
		}
	}
	wg.Wait()
	if len(prioMS) < opt.PriorityJobs {
		return 0, 0, 0, fmt.Errorf("only %d/%d region fixes succeeded", len(prioMS), opt.PriorityJobs)
	}
	sort.Float64s(prioMS)
	sort.Float64s(batchMS)
	return stats.Percentile(prioMS, 50), stats.Percentile(prioMS, 99), stats.Percentile(batchMS, 99), nil
}
