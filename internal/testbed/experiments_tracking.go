package testbed

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/stats"
)

// TrackingOptions sizes the roaming-client tracking experiment.
type TrackingOptions struct {
	// Steps is the number of fixes along the walk.
	Steps int
	// Dt is the seconds between consecutive fixes.
	Dt float64
	// Speed is the walking speed in m/s.
	Speed float64
	// Sites indexes the AP sites that hear the client.
	Sites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// GridCell is the synthesis pitch (coarser than the paper's
	// 0.10 m keeps a 30-step walk quick).
	GridCell float64
	// Tracker configures the Kalman layer.
	Tracker engine.TrackerOptions
	// Seed drives the channel noise.
	Seed int64
}

// DefaultTrackingOptions is a 1.2 m/s corridor walk heard by all six
// APs, one fix per second — the paper's "roaming about a building"
// scenario.
func DefaultTrackingOptions() TrackingOptions {
	return TrackingOptions{
		Steps:    28,
		Dt:       1.0,
		Speed:    1.2,
		Sites:    []int{0, 1, 2, 3, 4, 5},
		Capture:  DefaultCaptureOptions(),
		GridCell: 0.25,
		Tracker:  engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3},
		Seed:     61,
	}
}

// TrackingResult is the tracking experiment's machine-readable
// outcome.
type TrackingResult struct {
	// RawErrsCM and SmoothedErrsCM are per-step location errors.
	RawErrsCM      []float64
	SmoothedErrsCM []float64
	// RawRMSECM and SmoothedRMSECM are the headline comparison.
	RawRMSECM      float64
	SmoothedRMSECM float64
	// GateRejects counts fixes the tracker's outlier gate discarded.
	GateRejects uint64
	// Updates counts track updates delivered on the streaming
	// subscription.
	Updates int
}

// trackingTruth returns the client's true position at step i: a walk
// east along the interior corridor, turning north for the tail so the
// tracker sees a manoeuvre, clamped inside the floor.
func trackingTruth(opt TrackingOptions, i int) geom.Point {
	d := opt.Speed * opt.Dt * float64(i)
	const legEast = 28.0 // metres east before turning
	start := geom.Pt(4, 6.5)
	if d <= legEast {
		return geom.Pt(start.X+d, start.Y)
	}
	north := d - legEast
	if north > 7 {
		north = 7 // stop short of the top wall
	}
	return geom.Pt(start.X+legEast, start.Y+north)
}

func rmseSqrt(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RunTracking regenerates the real-time tracking claim: a client walks
// the office while the engine+tracker pipeline streams smoothed track
// updates, and the smoothed trail is compared against the raw per-fix
// positions. The whole path is the production one — engine worker
// pool, workspace pool, steering cache, tracker subscription.
func (tb *Testbed) RunTracking(opt TrackingOptions) (*Report, *TrackingResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.GridCell
	aps := tb.APsFor(opt.Sites, opt.Capture)

	tracker := engine.NewTracker(opt.Tracker)
	eng := engine.New(engine.Options{Config: cfg, Tracker: tracker})
	defer eng.Close()
	sub, cancel := tracker.Subscribe(opt.Steps + 1)
	defer cancel()

	base := time.Unix(1700000000, 0)
	res := &TrackingResult{}
	r := &Report{ID: "tracking", Title: "roaming client: raw fixes vs Kalman-smoothed track"}
	r.Addf("%4s  %-14s %-14s %-14s %8s %8s", "step", "truth", "raw fix", "smoothed", "raw", "track")

	for i := 0; i < opt.Steps; i++ {
		truth := trackingTruth(opt, i)
		captures := make([][]core.FrameCapture, len(opt.Sites))
		for si, s := range opt.Sites {
			captures[si] = tb.CaptureClient(truth, tb.Sites[s], opt.Capture, rng)
		}
		out := eng.Locate(engine.Request{
			ClientID: 1,
			APs:      aps,
			Captures: captures,
			Min:      tb.Plan.Min,
			Max:      tb.Plan.Max,
			Time:     base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second))),
		})
		if out.Err != nil {
			return nil, nil, out.Err
		}
		if out.Track == nil {
			panic("testbed: engine returned no track update with a tracker attached")
		}
		rawCM := out.Pos.Dist(truth) * 100
		trkCM := out.Track.Smoothed.Dist(truth) * 100
		res.RawErrsCM = append(res.RawErrsCM, rawCM)
		res.SmoothedErrsCM = append(res.SmoothedErrsCM, trkCM)
		r.Addf("%4d  (%5.1f,%4.1f)   (%5.1f,%4.1f)   (%5.1f,%4.1f)   %6.0fcm %6.0fcm",
			i+1, truth.X, truth.Y, out.Pos.X, out.Pos.Y,
			out.Track.Smoothed.X, out.Track.Smoothed.Y, rawCM, trkCM)
	}

	cancel()
	for range sub {
		res.Updates++
	}

	res.RawRMSECM = rmseSqrt(res.RawErrsCM)
	res.SmoothedRMSECM = rmseSqrt(res.SmoothedErrsCM)
	res.GateRejects = tracker.Stats().GateRejects

	r.Addf("")
	r.Addf("raw fixes:  %v  RMSE %.0fcm", stats.Summarize(res.RawErrsCM), res.RawRMSECM)
	r.Addf("smoothed:   %v  RMSE %.0fcm", stats.Summarize(res.SmoothedErrsCM), res.SmoothedRMSECM)
	r.Addf("gate rejects %d, streamed updates %d", res.GateRejects, res.Updates)
	r.AddMetric("raw_rmse_cm", res.RawRMSECM, "cm")
	r.AddMetric("smoothed_rmse_cm", res.SmoothedRMSECM, "cm")
	r.AddMetric("raw_median_cm", stats.Median(res.RawErrsCM), "cm")
	r.AddMetric("smoothed_median_cm", stats.Median(res.SmoothedErrsCM), "cm")
	r.AddMetric("gate_rejects", float64(res.GateRejects), "")
	r.AddMetric("streamed_updates", float64(res.Updates), "")
	return r, res, nil
}
