// Package testbed reconstructs the paper's experimental setup in
// simulation: one floor of a busy office (Figure 12's spirit — outer
// concrete shell, perimeter offices, interior corridor, concrete
// pillars, metal cabinets, cubicle clutter), 41 client positions spread
// roughly uniformly, six AP sites along the walls, and the capture
// machinery that turns a client transmission into per-AP antenna
// streams. Every experiment in the evaluation (§4) is a function over
// this testbed; see the experiments*.go files.
package testbed

import (
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wifi"
)

// Floor dimensions in metres, comparable to the paper's office floor.
const (
	FloorW = 40.0
	FloorH = 16.0
)

// Site is one AP placement: position and array row orientation (arrays
// mount flat against walls, broadside facing the interior).
type Site struct {
	Pos    geom.Point
	Orient float64
}

// Testbed bundles the floorplan, channel model, AP sites, and client
// positions.
type Testbed struct {
	// Plan is the office floorplan.
	Plan *geom.Floorplan
	// Model is the multipath channel over the plan.
	Model *channel.Model
	// Sites are the six AP positions ("1"–"6" in Figure 12).
	Sites []Site
	// Clients are the 41 client positions.
	Clients []geom.Point
	// Wavelength is the 2.4 GHz carrier wavelength.
	Wavelength float64
}

// Effective materials for the simulated office. Cubicle clutter soaks
// up specular energy, so effective reflectivities sit below raw
// material values; transmission losses are per surface crossing.
var (
	shellMat     = geom.Material{Name: "concrete-shell", Reflectivity: 0.40, TransmissionLossDB: 14}
	officeMat    = geom.Material{Name: "drywall-office", Reflectivity: 0.22, TransmissionLossDB: 4}
	pillarMat    = geom.Material{Name: "concrete-pillar", Reflectivity: 0.35, TransmissionLossDB: 5}
	cabinetMat   = geom.Material{Name: "metal-cabinet", Reflectivity: 0.65, TransmissionLossDB: 25}
	glassMat     = geom.Material{Name: "glass-partition", Reflectivity: 0.20, TransmissionLossDB: 2}
	scattererAmp = 0.12
)

// New builds the deterministic testbed. The same value is returned on
// every call, so experiment outputs are reproducible bit for bit.
func New() *Testbed {
	plan := &geom.Floorplan{}
	// Outer shell.
	plan.AddRect(geom.Pt(0, 0), geom.Pt(FloorW, FloorH), shellMat)
	// Perimeter offices along the bottom edge (like Figure 12's room
	// row): shared wall at y=4 with door gaps.
	for x := 0.0; x < 24; x += 6 {
		plan.AddWall(geom.Pt(x, 4), geom.Pt(x+4.6, 4), officeMat) // 1.4 m door gap
		plan.AddWall(geom.Pt(x+6, 0), geom.Pt(x+6, 4), officeMat)
	}
	// A lab with glass partition on the right.
	plan.AddWall(geom.Pt(30, 0), geom.Pt(30, 6), glassMat)
	plan.AddWall(geom.Pt(30, 6), geom.Pt(36, 6), glassMat)
	// Meeting rooms along the top edge.
	for x := 6.0; x < 30; x += 8 {
		plan.AddWall(geom.Pt(x, 12), geom.Pt(x+6.4, 12), officeMat)
		plan.AddWall(geom.Pt(x, 12), geom.Pt(x, 16), officeMat)
	}
	// Concrete pillars on the structural grid.
	for _, px := range []float64{10, 20, 30} {
		plan.AddRect(geom.Pt(px-0.4, 7.6), geom.Pt(px+0.4, 8.4), pillarMat)
	}
	// Metal cabinets.
	plan.AddWall(geom.Pt(14, 10.5), geom.Pt(17, 10.5), cabinetMat)
	plan.AddWall(geom.Pt(25, 5.2), geom.Pt(27.5, 5.2), cabinetMat)

	model := &channel.Model{
		Plan:           plan,
		Wavelength:     wifi.Wavelength(),
		MaxReflections: 2,
		WallRoughness:  0.7,
	}
	// Diffuse cubicle clutter: deterministic pseudo-random scatterers.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 18; i++ {
		model.Scatterers = append(model.Scatterers, channel.Scatterer{
			Pos:   geom.Pt(1.5+rng.Float64()*(FloorW-3), 1.5+rng.Float64()*(FloorH-3)),
			Coeff: scattererAmp * (0.6 + 0.8*rng.Float64()),
		})
	}

	tb := &Testbed{
		Plan:       plan,
		Model:      model,
		Wavelength: wifi.Wavelength(),
	}

	// Six AP sites along the walls, arrays broadside into the floor
	// (mirroring the "1"–"6" labels of Figure 12).
	tb.Sites = []Site{
		{Pos: geom.Pt(4, 0.6), Orient: 0},             // 1: bottom-left
		{Pos: geom.Pt(22, 0.6), Orient: 0},            // 2: bottom-centre
		{Pos: geom.Pt(39.4, 3), Orient: math.Pi / 2},  // 3: right wall
		{Pos: geom.Pt(34, 15.4), Orient: math.Pi},     // 4: top-right
		{Pos: geom.Pt(14, 15.4), Orient: math.Pi},     // 5: top-centre
		{Pos: geom.Pt(0.6, 11), Orient: -math.Pi / 2}, // 6: left wall
	}

	// 41 clients, roughly uniform, including spots near metal, glass,
	// and behind pillars (the "challenging" placements of §4).
	crng := rand.New(rand.NewSource(4242))
	grid := []geom.Point{}
	for y := 2.0; y <= 14; y += 3.0 {
		for x := 2.5; x <= 37.5; x += 4.5 {
			grid = append(grid, geom.Pt(x+crng.Float64()*1.2-0.6, y+crng.Float64()*1.2-0.6))
		}
	}
	// Hand-placed challenging spots: behind each pillar (relative to
	// site 1), next to the cabinets, inside the glass lab.
	hard := []geom.Point{
		geom.Pt(10.9, 8.7), geom.Pt(20.9, 8.6), geom.Pt(30.8, 8.5),
		geom.Pt(15.5, 11.1), geom.Pt(26.2, 4.6), geom.Pt(33, 3),
	}
	tb.Clients = append(tb.Clients, hard...)
	for _, p := range grid {
		if len(tb.Clients) >= 41 {
			break
		}
		if tooClose(p, tb.Clients, 1.0) || !plan.Contains(p) {
			continue
		}
		tb.Clients = append(tb.Clients, p)
	}
	return tb
}

func tooClose(p geom.Point, others []geom.Point, d float64) bool {
	for _, o := range others {
		if p.Dist(o) < d {
			return true
		}
	}
	return false
}

// CaptureOptions controls the simulated radio settings for a capture
// run.
type CaptureOptions struct {
	// Antennas is the AP row size (4, 6, or 8; the paper's Figure 16).
	Antennas int
	// Ninth adds the off-row antenna for symmetry removal.
	Ninth bool
	// Frames is how many frames to capture, with ≤MoveSigma client
	// movement between them (§4.2's semi-static data).
	Frames int
	// MoveSigma is the per-frame movement scale in metres (≤0.05 in
	// the paper).
	MoveSigma float64
	// TxPowerDBm is the client transmit power.
	TxPowerDBm float64
	// NoiseFloorDBm is the per-antenna noise power.
	NoiseFloorDBm float64
	// HeightDiff is the AP−client height difference (§4.3.1).
	HeightDiff float64
	// PolarizationLossDB models client antenna orientation (§4.3.2).
	PolarizationLossDB float64
	// Signal is the transmitted baseband waveform; nil means the
	// 40 Msps preamble.
	Signal []complex128
}

// DefaultCaptureOptions returns the paper's standard setup: 8+1
// antennas, three frames with small movements, office-grade SNR.
func DefaultCaptureOptions() CaptureOptions {
	return CaptureOptions{
		Antennas:      8,
		Ninth:         true,
		Frames:        3,
		MoveSigma:     0.04,
		TxPowerDBm:    15,
		NoiseFloorDBm: -85,
	}
}

// NewArray builds the AP array for a site with the given options.
func (tb *Testbed) NewArray(site Site, opt CaptureOptions) *array.Array {
	a := array.NewLinear(site.Pos, site.Orient, opt.Antennas, tb.Wavelength)
	a.NinthAntenna = opt.Ninth
	return a
}

// CaptureClient simulates opt.Frames transmissions from the client as
// received at the given site, returning per-frame antenna streams. The
// rng drives noise and inter-frame movement.
func (tb *Testbed) CaptureClient(client geom.Point, site Site, opt CaptureOptions, rng *rand.Rand) []core.FrameCapture {
	arr := tb.NewArray(site, opt)
	sig := opt.Signal
	if sig == nil {
		sig = wifi.Preamble40()
	}
	frames := make([]core.FrameCapture, 0, opt.Frames)
	pos := client
	for f := 0; f < opt.Frames; f++ {
		rec := tb.Model.Receive(pos, arr, sig, channel.RxConfig{
			TxPowerDBm:         opt.TxPowerDBm,
			NoiseFloorDBm:      opt.NoiseFloorDBm,
			PolarizationLossDB: opt.PolarizationLossDB,
			HeightDiff:         opt.HeightDiff,
			Rng:                rng,
		})
		frames = append(frames, core.FrameCapture{Streams: rec.Samples})
		if opt.MoveSigma > 0 {
			pos = client.Add(geom.Vec{
				X: (rng.Float64()*2 - 1) * opt.MoveSigma,
				Y: (rng.Float64()*2 - 1) * opt.MoveSigma,
			})
		}
	}
	return frames
}

// APsFor builds core.AP values for the given site indices with the
// capture options' geometry.
func (tb *Testbed) APsFor(siteIdx []int, opt CaptureOptions) []*core.AP {
	out := make([]*core.AP, len(siteIdx))
	for i, s := range siteIdx {
		out[i] = &core.AP{Array: tb.NewArray(tb.Sites[s], opt)}
	}
	return out
}

// Combinations returns all k-element subsets of {0..n-1}, the "all
// combinations of three, four, five, and six APs" of §4.1.
func Combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			c := make([]int, k)
			copy(c, idx)
			out = append(out, c)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	if k >= 0 && k <= n {
		rec(0, 0)
	}
	return out
}
