package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/stats"
)

// cdfPoints are the error abscissae (cm) reported alongside each CDF,
// matching the axis range of Figures 13 and 15.
var cdfPoints = []float64{10, 20, 50, 100, 200, 500}

// AccuracyOptions tunes the big localization sweeps.
type AccuracyOptions struct {
	// APCounts lists the AP subset sizes to evaluate (paper: 3,4,5,6).
	APCounts []int
	// MaxCombos caps the AP combinations per count (0 = all); lets
	// benchmarks trade coverage for time.
	MaxCombos int
	// MaxClients caps the evaluated clients (0 = all 41).
	MaxClients int
	// Seed drives noise and movement.
	Seed int64
	// Capture are the radio settings.
	Capture CaptureOptions
	// Pipeline is the processing configuration.
	Pipeline core.Config
}

// DefaultAccuracyOptions returns the full-paper sweep with the full
// ArrayTrack pipeline (Figure 15).
func DefaultAccuracyOptions() AccuracyOptions {
	tbWavelength := New().Wavelength
	return AccuracyOptions{
		APCounts: []int{3, 4, 5, 6},
		Seed:     1,
		Capture:  DefaultCaptureOptions(),
		Pipeline: core.DefaultConfig(tbWavelength),
	}
}

// spectraForAll captures and processes spectra for every (client, site)
// pair once; the combination sweep then reuses them. Row i corresponds
// to client i, column j to site j.
func (tb *Testbed) spectraForAll(opt AccuracyOptions) ([][]*music.Spectrum, []geom.Point, error) {
	clients := sampleClients(tb.Clients, opt.MaxClients)
	rng := rand.New(rand.NewSource(opt.Seed))
	specs := make([][]*music.Spectrum, len(clients))
	for ci, c := range clients {
		specs[ci] = make([]*music.Spectrum, len(tb.Sites))
		for si, site := range tb.Sites {
			frames := tb.CaptureClient(c, site, opt.Capture, rng)
			ap := &core.AP{Array: tb.NewArray(site, opt.Capture)}
			s, err := core.ProcessAP(ap, frames, opt.Pipeline)
			if err != nil {
				return nil, nil, fmt.Errorf("client %d site %d: %w", ci, si, err)
			}
			specs[ci][si] = s
		}
	}
	return specs, clients, nil
}

// sampleClients picks up to max clients spread evenly over the
// population (all of them when max ≤ 0), so capped runs stay
// representative rather than concentrating on the hand-picked hard
// spots at the front of the list.
func sampleClients(all []geom.Point, max int) []geom.Point {
	if max <= 0 || max >= len(all) {
		return all
	}
	out := make([]geom.Point, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, all[i*len(all)/max])
	}
	return out
}

// AccuracyResult is the per-AP-count error sample from a sweep.
type AccuracyResult struct {
	// ErrorsCM maps AP count to the location error sample (cm) across
	// all clients and combinations.
	ErrorsCM map[int][]float64
}

// RunAccuracy executes the localization sweep underlying Figures 13
// and 15: spectra per (client, site), then maximum-likelihood synthesis
// over every AP combination of each requested size.
func (tb *Testbed) RunAccuracy(opt AccuracyOptions) (*AccuracyResult, []geom.Point, error) {
	specs, clients, err := tb.spectraForAll(opt)
	if err != nil {
		return nil, nil, err
	}
	res := &AccuracyResult{ErrorsCM: make(map[int][]float64)}
	cell := opt.Pipeline.GridCell
	if cell <= 0 {
		cell = 0.10
	}
	for _, k := range opt.APCounts {
		combos := Combinations(len(tb.Sites), k)
		if opt.MaxCombos > 0 && len(combos) > opt.MaxCombos {
			combos = combos[:opt.MaxCombos]
		}
		for ci, c := range clients {
			for _, combo := range combos {
				aps := make([]core.APSpectrum, len(combo))
				for i, si := range combo {
					aps[i] = core.APSpectrum{Pos: tb.Sites[si].Pos, Spectrum: specs[ci][si]}
				}
				pos, _, err := core.Localize(aps, tb.Plan.Min, tb.Plan.Max, cell)
				if err != nil {
					return nil, nil, err
				}
				res.ErrorsCM[k] = append(res.ErrorsCM[k], pos.Dist(c)*100)
			}
		}
	}
	return res, clients, nil
}

func accuracyReport(id, title string, res *AccuracyResult, counts []int) *Report {
	r := &Report{ID: id, Title: title}
	r.Addf("%-6s %8s %8s %8s %8s %8s", "APs", "median", "mean", "p90", "p95", "p98")
	for _, k := range counts {
		s := stats.Summarize(res.ErrorsCM[k])
		r.Addf("%-6d %7.0fcm %7.0fcm %7.0fcm %7.0fcm %7.0fcm", k, s.Median, s.Mean, s.P90, s.P95, s.P98)
	}
	for _, k := range counts {
		cdf := stats.NewCDF(res.ErrorsCM[k])
		r.Addf("CDF %d APs:", k)
		for _, x := range cdfPoints {
			r.Addf("  P(err ≤ %4.0f cm) = %.3f", x, cdf.At(x))
		}
	}
	return r
}

// RunFig13 regenerates Figure 13: CDFs of location error from
// unoptimized raw AoA spectra (static clients, single frame, no
// weighting/suppression/symmetry removal) across all combinations of
// 3–6 APs.
func (tb *Testbed) RunFig13(opt AccuracyOptions) (*Report, *AccuracyResult, error) {
	opt.Pipeline = core.UnoptimizedConfig(tb.Wavelength)
	opt.Capture.Frames = 1
	opt.Capture.MoveSigma = 0
	res, _, err := tb.RunAccuracy(opt)
	if err != nil {
		return nil, nil, err
	}
	return accuracyReport("fig13", "location error CDF, unoptimized raw spectra (static)", res, opt.APCounts), res, nil
}

// RunFig15 regenerates Figure 15: CDFs of location error with the full
// ArrayTrack pipeline on semi-static data (three frames with ≤5 cm
// movements) across all combinations of 3–6 APs.
func (tb *Testbed) RunFig15(opt AccuracyOptions) (*Report, *AccuracyResult, error) {
	opt.Pipeline = core.DefaultConfig(tb.Wavelength)
	if opt.Capture.Frames < 2 {
		opt.Capture.Frames = 3
	}
	res, _, err := tb.RunAccuracy(opt)
	if err != nil {
		return nil, nil, err
	}
	return accuracyReport("fig15", "location error CDF, full ArrayTrack (semi-static)", res, opt.APCounts), res, nil
}

// RunFig16 regenerates Figure 16: location error with 4-, 6-, and
// 8-antenna APs, all six APs cooperating.
func (tb *Testbed) RunFig16(opt AccuracyOptions) (*Report, error) {
	r := &Report{ID: "fig16", Title: "location error vs number of AP antennas (6 APs)"}
	r.Addf("%-10s %8s %8s %8s", "antennas", "median", "mean", "p95")
	for _, nAnt := range []int{4, 6, 8} {
		o := opt
		o.APCounts = []int{6}
		o.Capture.Antennas = nAnt
		o.Pipeline = core.DefaultConfig(tb.Wavelength)
		res, _, err := tb.RunAccuracy(o)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(res.ErrorsCM[6])
		r.Addf("%-10d %7.0fcm %7.0fcm %7.0fcm", nAnt, s.Median, s.Mean, s.P95)
	}
	return r, nil
}

// RunFig18 regenerates Figure 18: robustness of the full pipeline to a
// 1.5 m AP–client height difference and to a 90° antenna polarization
// mismatch, against the baseline setup (6 APs, 8 antennas).
func (tb *Testbed) RunFig18(opt AccuracyOptions) (*Report, error) {
	r := &Report{ID: "fig18", Title: "robustness: height difference and antenna orientation (6 APs)"}
	cases := []struct {
		name   string
		mutate func(*CaptureOptions)
	}{
		{"original", func(*CaptureOptions) {}},
		{"height +1.5m", func(c *CaptureOptions) { c.HeightDiff = 1.5 }},
		{"orientation 90°", func(c *CaptureOptions) { c.PolarizationLossDB = 20 }},
	}
	r.Addf("%-18s %8s %8s %8s", "condition", "median", "mean", "p95")
	for _, cse := range cases {
		o := opt
		o.APCounts = []int{6}
		o.Pipeline = core.DefaultConfig(tb.Wavelength)
		cse.mutate(&o.Capture)
		res, _, err := tb.RunAccuracy(o)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(res.ErrorsCM[6])
		r.Addf("%-18s %7.0fcm %7.0fcm %7.0fcm", cse.name, s.Median, s.Mean, s.P95)
	}
	return r, nil
}

// RunFig14 regenerates Figure 14: likelihood heatmaps for one client as
// the number of cooperating APs grows from one to six, rendered as
// ASCII maps ('X' marks ground truth).
func (tb *Testbed) RunFig14(clientIdx int, seed int64) (*Report, error) {
	if clientIdx < 0 || clientIdx >= len(tb.Clients) {
		clientIdx = 8
	}
	client := tb.Clients[clientIdx]
	rng := rand.New(rand.NewSource(seed))
	capOpt := DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)

	var specs []core.APSpectrum
	r := &Report{ID: "fig14", Title: fmt.Sprintf("likelihood heatmaps, client %d at %v", clientIdx, client)}
	for si, site := range tb.Sites {
		frames := tb.CaptureClient(client, site, capOpt, rng)
		ap := &core.AP{Array: tb.NewArray(site, capOpt)}
		s, err := core.ProcessAP(ap, frames, cfg)
		if err != nil {
			return nil, err
		}
		specs = append(specs, core.APSpectrum{Pos: site.Pos, Spectrum: s})

		h, err := core.ComputeHeatmap(specs, tb.Plan.Min, tb.Plan.Max, 0.5)
		if err != nil {
			return nil, err
		}
		pos, _, err := core.Localize(specs, tb.Plan.Min, tb.Plan.Max, 0.10)
		if err != nil {
			return nil, err
		}
		r.Addf("--- %d AP(s): estimate %v, error %.0f cm ---", si+1, pos, pos.Dist(client)*100)
		r.Lines = append(r.Lines, h.ASCII(map[byte]geom.Point{'X': client}))
	}
	return r, nil
}

// RunBaselineComparison pits ArrayTrack against the RSS comparators:
// log-distance trilateration and k-NN fingerprinting over the same
// clients and APs. RSS values come from the same ray-traced channel
// (sum of path powers plus shadowing, quantized to whole dB).
func (tb *Testbed) RunBaselineComparison(opt AccuracyOptions) (*Report, error) {
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	clients := sampleClients(tb.Clients, opt.MaxClients)

	rssAt := func(p geom.Point) []float64 {
		out := make([]float64, len(tb.Sites))
		for si, site := range tb.Sites {
			paths := tb.Model.Paths(p, site.Pos, 0)
			var pow float64
			for _, pp := range paths {
				a := real(pp.Gain)*real(pp.Gain) + imag(pp.Gain)*imag(pp.Gain)
				pow += a
			}
			rss := opt.Capture.TxPowerDBm + 10*log10(pow) + rng.NormFloat64()*2.5
			out[si] = baseline.Quantize(rss)
		}
		return out
	}

	// Offline survey on a 2 m grid for fingerprinting + model fit.
	var db baseline.FingerprintDB
	var dists, rssSamples []float64
	for x := 1.0; x < FloorW; x += 2 {
		for y := 1.0; y < FloorH; y += 2 {
			p := geom.Pt(x, y)
			v := rssAt(p)
			db.Add(baseline.Fingerprint{Pos: p, RSS: v})
			for si := range tb.Sites {
				dists = append(dists, p.Dist(tb.Sites[si].Pos))
				rssSamples = append(rssSamples, v[si])
			}
		}
	}
	model, err := baseline.FitLogDistance(dists, rssSamples)
	if err != nil {
		return nil, err
	}

	var triErr, fpErr []float64
	for _, c := range clients {
		v := rssAt(c)
		var readings []baseline.RSSReading
		for si := range tb.Sites {
			readings = append(readings, baseline.RSSReading{AP: tb.Sites[si].Pos, RSSdBm: v[si]})
		}
		if p, err := baseline.Trilaterate(readings, model, tb.Plan.Min, tb.Plan.Max); err == nil {
			triErr = append(triErr, p.Dist(c)*100)
		}
		if p, err := db.Locate(v, 4); err == nil {
			fpErr = append(fpErr, p.Dist(c)*100)
		}
	}

	// ArrayTrack with all six APs on the same clients.
	o := opt
	o.APCounts = []int{6}
	o.Pipeline = core.DefaultConfig(tb.Wavelength)
	res, _, err := tb.RunAccuracy(o)
	if err != nil {
		return nil, err
	}

	r := &Report{ID: "baseline", Title: "ArrayTrack vs RSS baselines (6 APs)"}
	r.Addf("%-24s %8s %8s  (fitted model: P0=%.1f dBm, n=%.2f)",
		"method", "median", "mean", model.P0dBm, model.Exponent)
	at := stats.Summarize(res.ErrorsCM[6])
	tri := stats.Summarize(triErr)
	fp := stats.Summarize(fpErr)
	r.Addf("%-24s %7.0fcm %7.0fcm", "ArrayTrack (AoA)", at.Median, at.Mean)
	r.Addf("%-24s %7.0fcm %7.0fcm", "RSS trilateration", tri.Median, tri.Mean)
	r.Addf("%-24s %7.0fcm %7.0fcm", "RSS fingerprint kNN", fp.Median, fp.Mean)
	return r, nil
}

func log10(x float64) float64 {
	if x <= 0 {
		return -30
	}
	return math.Log10(x)
}
