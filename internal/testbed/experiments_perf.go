package testbed

import (
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/music"
	"repro/internal/stats"
)

// allocsPerRun measures the average heap allocations of one call to f,
// the way testing.AllocsPerRun does (single P, warm-up call, Mallocs
// delta over runs) — reimplemented so the testbed, which ships inside
// the atbench binary, does not link the testing framework.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// PerfOptions sizes the workspace/latency microbenchmark experiment.
type PerfOptions struct {
	// Clients is the number of per-fix latency samples.
	Clients int
	// Sites indexes the AP sites every client is heard by.
	Sites []int
	// GridCell is the synthesis pitch.
	GridCell float64
	// AllocRuns is the sample count for the allocs/op measurements.
	AllocRuns int
}

// DefaultPerfOptions matches the throughput experiment's setup so the
// numbers compose.
func DefaultPerfOptions() PerfOptions {
	return PerfOptions{Clients: 24, Sites: []int{0, 2, 4}, GridCell: 0.25, AllocRuns: 20}
}

// RunPerf measures the machine-readable perf trajectory this repo
// tracks across commits: steady-state allocations per spectrum and per
// fix for the allocating versus workspace paths, plus per-fix latency
// percentiles and sustained fixes/sec through the engine. Emitted as
// metrics so `atbench -exp perf -json` seeds BENCH_*.json artifacts.
func (tb *Testbed) RunPerf(opt PerfOptions) (*Report, error) {
	tOpt := DefaultThroughputOptions()
	tOpt.Sites = opt.Sites
	tOpt.GridCell = opt.GridCell
	reqs := tb.ThroughputRequests(opt.Clients, tOpt)

	r := &Report{ID: "perf", Title: "workspace-path allocations and fix latency"}

	// --- allocs/op: one MUSIC spectrum, allocating vs workspace.
	ap := reqs[0].APs[0]
	streams := reqs[0].Captures[0][0].Streams[:ap.Array.N]
	specOpt := music.Options{
		Wavelength:      tb.Wavelength,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    100,
		ForwardBackward: true,
		Steering:        music.NewSteeringCache(),
	}
	ws := music.NewWorkspace()
	if _, err := music.ComputeSpectrumWS(ws, ap.Array, streams, specOpt); err != nil {
		return nil, err
	}
	specAlloc := allocsPerRun(opt.AllocRuns, func() {
		if _, err := music.ComputeSpectrum(ap.Array, streams, specOpt); err != nil {
			panic(err)
		}
	})
	specWS := allocsPerRun(opt.AllocRuns, func() {
		if _, err := music.ComputeSpectrumWS(ws, ap.Array, streams, specOpt); err != nil {
			panic(err)
		}
	})

	// --- allocs/op: one complete fix, allocating vs pooled workspaces.
	cfgAlloc := core.DefaultConfig(tb.Wavelength)
	cfgAlloc.GridCell = opt.GridCell
	cfgAlloc.Workspaces = nil
	cfgAlloc.APWorkers = 0
	cfgWS := cfgAlloc
	cfgWS.Workspaces = music.NewWorkspacePool()
	q := reqs[0]
	locate := func(cfg core.Config) {
		if _, _, err := core.LocateClient(q.APs, q.Captures, q.Min, q.Max, cfg); err != nil {
			panic(err)
		}
	}
	locate(cfgWS) // warm the pool and caches
	locAlloc := allocsPerRun(opt.AllocRuns/2, func() { locate(cfgAlloc) })
	locWS := allocsPerRun(opt.AllocRuns/2, func() { locate(cfgWS) })

	// --- per-fix latency through the engine (streaming one at a time,
	// as the backend's quorum flushes do), then batch throughput.
	cfgEng := core.DefaultConfig(tb.Wavelength)
	cfgEng.GridCell = opt.GridCell
	eng := engine.New(engine.Options{Config: cfgEng})
	defer eng.Close()
	lat := make([]float64, 0, len(reqs))
	serialStart := time.Now()
	for _, q := range reqs {
		s := time.Now()
		if res := eng.Locate(q); res.Err != nil {
			return nil, res.Err
		}
		lat = append(lat, float64(time.Since(s).Microseconds())/1000)
	}
	serialRate := float64(len(reqs)) / time.Since(serialStart).Seconds()
	sort.Float64s(lat)
	p50 := stats.Percentile(lat, 50)
	p99 := stats.Percentile(lat, 99)

	batchStart := time.Now()
	for _, res := range eng.LocateBatch(reqs) {
		if res.Err != nil {
			return nil, res.Err
		}
	}
	batchRate := float64(len(reqs)) / time.Since(batchStart).Seconds()

	r.Addf("ComputeSpectrum allocs/op:  allocating %5.0f   workspace %5.0f   (%.1fx fewer)",
		specAlloc, specWS, ratio(specAlloc, specWS))
	r.Addf("LocateClient    allocs/op:  allocating %5.0f   workspace %5.0f   (%.1fx fewer)",
		locAlloc, locWS, ratio(locAlloc, locWS))
	r.Addf("fix latency over %d clients: p50 %.1f ms  p99 %.1f ms", len(reqs), p50, p99)
	r.Addf("fixes/sec: %.1f streaming, %.1f batch (%d workers)",
		serialRate, batchRate, eng.Stats().Workers)

	r.AddMetric("spectrum_allocs_allocating", specAlloc, "allocs/op")
	r.AddMetric("spectrum_allocs_workspace", specWS, "allocs/op")
	r.AddMetric("spectrum_alloc_reduction", ratio(specAlloc, specWS), "x")
	r.AddMetric("locate_allocs_allocating", locAlloc, "allocs/op")
	r.AddMetric("locate_allocs_workspace", locWS, "allocs/op")
	r.AddMetric("locate_alloc_reduction", ratio(locAlloc, locWS), "x")
	r.AddMetric("fix_latency_p50_ms", p50, "ms")
	r.AddMetric("fix_latency_p99_ms", p99, "ms")
	r.AddMetric("fixes_per_sec_streaming", serialRate, "fixes/sec")
	r.AddMetric("fixes_per_sec_batch", batchRate, "fixes/sec")
	return r, nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
