package testbed

import (
	"testing"
	"time"
)

// chaosTestOptions shrinks the walk so the test stays quick while
// still crossing the kill point with several degraded steps.
func chaosTestOptions() ChaosOptions {
	opt := DefaultChaosOptions()
	opt.Steps = 6
	opt.KillStep = 3
	opt.Capture.Antennas = 4
	opt.GridCell = 0.5
	opt.ShedAfter = time.Millisecond
	opt.BurstJobs = 12
	return opt
}

// TestRunChaosMeetsTargets is the ISSUE's acceptance bar for the
// hostile-network tentpole: killing 1 of the walker's APs mid-walk
// leaves every tracked client receiving fixes (the walker's flagged
// degraded), leaks zero pooled captures, keeps /healthz up, and moves
// the surviving client's smoothed RMSE by exactly nothing; a stalled
// connection is reaped within twice the idle timeout without hurting
// a healthy one; corrupted frames quarantine their AP and cooldown
// readmits it; an overload burst sheds instead of stalling.
func TestRunChaosMeetsTargets(t *testing.T) {
	tb := New()
	r, res, err := tb.RunChaos(chaosTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("degraded fixes %d/%d (missed %d), survivor delta %.3fcm (%d mismatches), reap %v/%v, quarantines %d, shed %d",
		res.DegradedFixes, res.PostKillSteps, res.MissedFixes, res.RMSEDeltaCM,
		res.SurvivorMismatches, res.ReapedWithin, res.ReapBound, res.Quarantines, res.Shed)

	// Phase A: degraded serving.
	if res.MissedFixes != 0 {
		t.Fatalf("walker missed %d fixes after the AP kill, want 0", res.MissedFixes)
	}
	if res.DegradedFixes != res.PostKillSteps {
		t.Fatalf("only %d of %d post-kill fixes were degraded-flagged", res.DegradedFixes, res.PostKillSteps)
	}
	if res.DegradedFlushes != uint64(res.PostKillSteps) {
		t.Fatalf("backend counted %d degraded flushes for %d post-kill steps", res.DegradedFlushes, res.PostKillSteps)
	}
	if res.SurvivorMismatches != 0 || res.RMSEDeltaCM != 0 {
		t.Fatalf("surviving client perturbed by the fault: %d mismatches, delta %.6f cm",
			res.SurvivorMismatches, res.RMSEDeltaCM)
	}
	if res.LeakedWorkspaces != 0 {
		t.Fatalf("%d pooled ingest workspaces leaked", res.LeakedWorkspaces)
	}
	if !res.HealthzOK || !res.MetricsOK {
		t.Fatalf("ops surface down on the degraded server: healthz %v metrics %v", res.HealthzOK, res.MetricsOK)
	}

	// Phase B: idle reap.
	if res.ReapedWithin > res.ReapBound {
		t.Fatalf("slow loris survived %v, bound %v", res.ReapedWithin, res.ReapBound)
	}
	if res.DeadlineReaped != 1 {
		t.Fatalf("DeadlineReaped = %d, want 1", res.DeadlineReaped)
	}
	if !res.HealthyConnSurvived {
		t.Fatal("healthy connection stopped ingesting after the reap")
	}
	if res.Truncations == 0 {
		t.Fatal("chaos fired no truncations")
	}

	// Phase C: quarantine.
	if res.BitFlips == 0 {
		t.Fatal("chaos fired no bit flips")
	}
	if res.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", res.Quarantines)
	}
	if res.QuarantineDropped == 0 {
		t.Fatal("no captures dropped while the AP was quarantined")
	}
	if !res.Readmitted {
		t.Fatal("AP not readmitted after cooldown")
	}

	// Phase D: shedding.
	if res.Shed == 0 {
		t.Fatal("overload burst shed nothing")
	}
	if res.ShedFixes == 0 {
		t.Fatal("overload burst completed no fixes at all")
	}

	// CI gates on the report metrics.
	got := map[string]float64{}
	for _, m := range r.Metrics {
		got[m.Name] = m.Value
	}
	for _, name := range []string{
		"degraded_fixes", "missed_fixes", "survivor_rmse_delta_cm",
		"leaked_workspaces", "healthz_ok", "reap_ms", "quarantines", "shed",
	} {
		if _, ok := got[name]; !ok {
			t.Fatalf("report metric %s missing (CI gates on it)", name)
		}
	}
	if got["survivor_rmse_delta_cm"] != 0 || got["leaked_workspaces"] != 0 || got["healthz_ok"] != 1 {
		t.Fatalf("gate metrics %v", got)
	}
}
