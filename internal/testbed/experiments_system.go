package testbed

import (
	"context"
	"math"
	"math/rand"
	"net"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wifi"
)

// RunCollision regenerates the §4.3.5 experiment: two clients collide,
// with the second frame's preamble starting while the first frame's
// body is still on the air. Successive interference cancellation
// recovers both AoAs: the first preamble is clean; the second spectrum
// contains both transmitters' bearings, and removing the first packet's
// peaks isolates the second's.
func (tb *Testbed) RunCollision(seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	site := tb.Sites[0]
	capOpt := DefaultCaptureOptions()
	arr := tb.NewArray(site, capOpt)

	c1 := geom.Pt(site.Pos.X+7, site.Pos.Y+3)
	c2 := geom.Pt(site.Pos.X-3, site.Pos.Y+8)
	truth1 := site.Pos.Bearing(c1)
	truth2 := site.Pos.Bearing(c2)

	// Client 1: preamble followed by a random-QPSK body. Client 2:
	// preamble starting mid-body of client 1.
	preamble := wifi.Preamble40()
	body := make([]complex128, 4000)
	for i := range body {
		body[i] = qpsk(rng)
	}
	sig1 := append(append([]complex128{}, preamble...), body...)
	const offset = 2000 // samples into sig1 when client 2 starts

	rx1 := tb.Model.Receive(c1, arr, sig1, channel.RxConfig{
		TxPowerDBm: capOpt.TxPowerDBm, NoiseFloorDBm: capOpt.NoiseFloorDBm, Rng: rng,
	})
	rx2 := tb.Model.Receive(c2, arr, preamble, channel.RxConfig{
		TxPowerDBm: capOpt.TxPowerDBm, NoiseFloorDBm: -200, Rng: nil,
	})
	// Superpose client 2 shifted by offset.
	combined := make([][]complex128, len(rx1.Samples))
	for k := range combined {
		st := append([]complex128{}, rx1.Samples[k]...)
		for i, v := range rx2.Samples[k] {
			if offset+i < len(st) {
				st[offset+i] += v
			}
		}
		combined[k] = st
	}

	opt := tb.spectrumOptions()
	// Spectrum 1: from the first packet's preamble (clean region).
	s1, err := music.ComputeSpectrum(arr, sliceStreams(combined[:arr.N], 0, 640), opt)
	if err != nil {
		return nil, err
	}
	// Spectrum 2: from the second packet's preamble region, polluted by
	// packet 1's body.
	s2, err := music.ComputeSpectrum(arr, sliceStreams(combined[:arr.N], offset, 640), opt)
	if err != nil {
		return nil, err
	}
	// SIC: remove packet 1's bearings from spectrum 2.
	var bearings1 []float64
	for _, p := range s1.Peaks(core.DefaultPeakFloor) {
		bearings1 = append(bearings1, p.Theta)
	}
	s2clean := core.RemovePeaksNear(s2, bearings1, 8)

	r := &Report{ID: "collision", Title: "colliding transmissions, successive interference cancellation"}
	r.Addf("client 1 true bearing %.0f°, client 2 true bearing %.0f°", geom.Deg(truth1), geom.Deg(truth2))
	r.Addf("packet 1 spectrum peaks:   %s", describePeaks(s1, 0.1))
	r.Addf("packet 2 combined peaks:   %s", describePeaks(s2, 0.1))
	r.Addf("packet 2 after SIC:        %s", describePeaks(s2clean, 0.1))
	r.Addf("packet 1 AoA error %.1f°, packet 2 AoA error after SIC %.1f°",
		peakErrorDeg(s1, truth1), peakErrorDeg(s2clean, truth2))
	return r, nil
}

func qpsk(rng *rand.Rand) complex128 {
	re := 1.0
	if rng.Intn(2) == 0 {
		re = -1
	}
	im := 1.0
	if rng.Intn(2) == 0 {
		im = -1
	}
	return complex(re/math.Sqrt2, im/math.Sqrt2)
}

func sliceStreams(streams [][]complex128, start, n int) [][]complex128 {
	out := make([][]complex128, len(streams))
	for k, st := range streams {
		end := start + n
		if end > len(st) {
			end = len(st)
		}
		out[k] = st[start:end]
	}
	return out
}

// RunLatency regenerates the §4.4 latency budget: detection time (Td),
// sample serialization over a real loopback TCP link (Tt), and
// server-side processing (Tp) for a full six-AP location estimate.
func (tb *Testbed) RunLatency(seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	capOpt := DefaultCaptureOptions()
	client := tb.Clients[20]

	// Capture at all six APs.
	var captures [][]core.FrameCapture
	aps := tb.APsFor([]int{0, 1, 2, 3, 4, 5}, capOpt)
	for _, site := range tb.Sites {
		captures = append(captures, tb.CaptureClient(client, site, capOpt, rng))
	}

	// Td: preamble detection needs the 16 µs of training symbols.
	td := 16 * time.Microsecond

	// Tt: ship one 10-sample × (8+1)-antenna capture per frame per AP
	// over loopback TCP and measure wall-clock serialization.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	received := make(chan int, 1)
	backend := server.NewBackend(6, time.Second, func(_ uint32, cs []server.Capture) {
		received <- len(cs)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go backend.Serve(ctx, l)

	start := time.Now()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return nil, err
	}
	node10 := func(apID uint32, frames []core.FrameCapture) {
		n := server.NewAPNode(apID, 8)
		for _, f := range frames {
			short := make([][]complex128, len(f.Streams))
			for k, st := range f.Streams {
				if len(st) > 110 {
					st = st[100:110] // the 10 samples ArrayTrack ships
				}
				short[k] = st
			}
			n.Record(1, time.Now(), short)
		}
		_ = n.Upload(ctx, conn)
	}
	for i := range tb.Sites {
		node10(uint32(i+1), captures[i])
	}
	conn.Close()
	var grouped int
	select {
	case grouped = <-received:
	case <-time.After(5 * time.Second):
		return nil, context.DeadlineExceeded
	}
	tt := time.Since(start)

	// Tp: spectra for six APs plus grid synthesis and hill climbing.
	startP := time.Now()
	cfg := core.DefaultConfig(tb.Wavelength)
	pos, _, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, cfg)
	if err != nil {
		return nil, err
	}
	tp := time.Since(startP)

	lat := server.Latency{Detection: td, Transfer: tt, Processing: tp}
	r := &Report{ID: "latency", Title: "end-to-end latency budget (§4.4)"}
	r.Addf("captures grouped at backend: %d (6 APs × 3 frames)", grouped)
	r.Addf("Td (detection)            %12v", lat.Detection)
	r.Addf("Tt (transfer, loopback)   %12v", lat.Transfer)
	r.Addf("Tp (processing+synthesis) %12v", lat.Processing)
	r.Addf("total after packet end    %12v   (paper: ≈100 ms on 2011 hardware)", lat.Total())
	r.Addf("modelled Tt on 1 Mbit/s WARP link: %v (paper: 2.56 ms)",
		server.TransferTime(8, 10, 1))
	r.Addf("location error %.0f cm", pos.Dist(client)*100)
	return r, nil
}

// RunHeightError regenerates Appendix A: the percentage error in the
// antenna-pair distance differential caused by an AP–client height
// difference, closed form (1/cos φ − 1) versus the simulator's actual
// path stretching.
func (tb *Testbed) RunHeightError() (*Report, error) {
	r := &Report{ID: "heighterr", Title: "height-difference error model (Appendix A)"}
	r.Addf("%8s %8s %12s %12s", "h (m)", "d (m)", "closed form", "simulated")
	for _, c := range []struct{ h, d float64 }{{1.5, 5}, {1.5, 10}} {
		closed := 1/math.Cos(math.Atan2(c.h, c.d)) - 1
		m := &channel.Model{Wavelength: tb.Wavelength}
		flat := m.Paths(geom.Pt(0, 0), geom.Pt(c.d, 0), 0)[0].Length
		high := m.Paths(geom.Pt(0, 0), geom.Pt(c.d, 0), c.h)[0].Length
		sim := high/flat - 1
		r.Addf("%8.1f %8.0f %11.1f%% %11.1f%%", c.h, c.d, closed*100, sim*100)
	}
	return r, nil
}

// AblationResult is one pipeline variant's error summary.
type AblationResult struct {
	Name   string
	Median float64
	Mean   float64
}

// RunAblation quantifies each design choice DESIGN.md calls out: the
// full pipeline versus single-knob variants (no weighting, no
// suppression, no symmetry removal, NG ∈ {1,2,3}, no forward-backward
// averaging), at a fixed AP count.
func (tb *Testbed) RunAblation(opt AccuracyOptions) (*Report, []AblationResult, error) {
	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"full pipeline", func(*core.Config) {}},
		{"no geometry weighting", func(c *core.Config) { c.UseWeighting = false }},
		{"no multipath suppression", func(c *core.Config) { c.UseSuppression = false }},
		{"no symmetry removal", func(c *core.Config) { c.UseSymmetryRemoval = false }},
		{"no forward-backward", func(c *core.Config) { c.ForwardBackward = false }},
		{"NG=1 (no smoothing)", func(c *core.Config) { c.SmoothingGroups = 1 }},
		{"NG=3", func(c *core.Config) { c.SmoothingGroups = 3 }},
		{"unoptimized (all off)", func(c *core.Config) {
			c.UseWeighting, c.UseSuppression, c.UseSymmetryRemoval = false, false, false
		}},
	}
	r := &Report{ID: "ablation", Title: "pipeline ablations"}
	r.Addf("%-28s %8s %8s   (APs=%v)", "variant", "median", "mean", opt.APCounts)
	var out []AblationResult
	for _, v := range variants {
		o := opt
		o.Pipeline = core.DefaultConfig(tb.Wavelength)
		v.mutate(&o.Pipeline)
		res, _, err := tb.RunAccuracy(o)
		if err != nil {
			return nil, nil, err
		}
		var all []float64
		for _, k := range o.APCounts {
			all = append(all, res.ErrorsCM[k]...)
		}
		s := stats.Summarize(all)
		r.Addf("%-28s %7.0fcm %7.0fcm", v.name, s.Median, s.Mean)
		out = append(out, AblationResult{Name: v.name, Median: s.Median, Mean: s.Mean})
	}
	return r, out, nil
}
