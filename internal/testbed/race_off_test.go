//go:build !race

package testbed

// raceEnabled: see race_on_test.go.
const raceEnabled = false
