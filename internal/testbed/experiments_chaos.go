package testbed

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/ops"
	"repro/internal/server"
)

// ChaosOptions sizes the hostile-network experiment: an AP killed
// mid-walk with degraded-quorum serving, a slow-loris connection
// against the idle reaper, chaos-corrupted frames against the AP error
// budget, and a burst against the engine's overload shedding.
type ChaosOptions struct {
	// Steps is the number of fixes along the walk; KillStep is the
	// first step at which the victim AP is dead.
	Steps, KillStep int
	// Dt is the seconds between fixes, Speed the walk speed in m/s.
	Dt, Speed float64
	// WalkerSites are the AP sites that hear the walking client; the
	// LAST one is the AP killed at KillStep. SurvivorSites hear the
	// stationary client and must exclude the killed site, so the
	// survivor's captures are identical with and without the fault —
	// any RMSE difference is then the server's fault, not the
	// channel's.
	WalkerSites, SurvivorSites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// GridCell is the synthesis pitch.
	GridCell float64
	// Tracker configures the Kalman layer (identically in both runs).
	Tracker engine.TrackerOptions
	// Quorum and DegradedQuorum set the backend's full and degraded
	// flush thresholds; DegradedAfter is the stuck-group age that
	// triggers a degraded flush.
	Quorum, DegradedQuorum int
	DegradedAfter          time.Duration
	// IdleTimeout is the per-connection read deadline the slow-loris
	// phase must be reaped within twice of.
	IdleTimeout time.Duration
	// ErrorBudget is the corrupted-frame count that quarantines an AP.
	ErrorBudget int
	// ShedAfter is the queue-age bound for the overload burst;
	// BurstJobs how many batch jobs the burst submits to one worker.
	ShedAfter time.Duration
	BurstJobs int
	// Seed drives the channel noise and the chaos injectors.
	Seed int64
}

// DefaultChaosOptions walks for 14 fixes and kills one of the walker's
// four APs after the 7th.
func DefaultChaosOptions() ChaosOptions {
	opt := ChaosOptions{
		Steps:          14,
		KillStep:       7,
		Dt:             1.0,
		Speed:          1.2,
		WalkerSites:    []int{0, 1, 2, 3},
		SurvivorSites:  []int{0, 1, 2, 4},
		Capture:        DefaultCaptureOptions(),
		GridCell:       0.25,
		Tracker:        engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3, DegradedGateScale: 1.5},
		Quorum:         4,
		DegradedQuorum: 3,
		DegradedAfter:  500 * time.Millisecond,
		IdleTimeout:    250 * time.Millisecond,
		ErrorBudget:    3,
		ShedAfter:      5 * time.Millisecond,
		BurstJobs:      24,
		Seed:           71,
	}
	// One capture per AP per step: the quorum flush fires on the Nth
	// distinct AP's first capture, so multi-frame captures would strand
	// a trailing frame in the next group and blur the per-step
	// accounting this experiment asserts on.
	opt.Capture.Antennas = 6
	opt.Capture.Frames = 1
	return opt
}

// ChaosResult is the machine-readable outcome of the chaos run.
type ChaosResult struct {
	// PostKillSteps is how many steps the walker survives on a
	// degraded quorum; DegradedFixes how many of those produced a fix
	// flagged Degraded end-to-end; MissedFixes how many produced no
	// fix at all. Want DegradedFixes == PostKillSteps, MissedFixes 0.
	PostKillSteps, DegradedFixes, MissedFixes int
	// SurvivorMismatches counts steps where the stationary client's
	// smoothed position differs (at all) between the fault run and the
	// no-fault control. RMSEDeltaCM is |control − fault| over its
	// smoothed errors. Both must be 0: a fault on one client's AP must
	// not perturb another client by a micrometre.
	SurvivorMismatches int
	RMSEDeltaCM        float64
	// WalkerRMSECM is the fault run's walker RMSE (context: the track
	// survives on three APs, it just gets noisier).
	WalkerRMSECM, SurvivorRMSECM float64
	// DegradedFlushes is the backend's counter after the fault run.
	DegradedFlushes uint64
	// LeakedWorkspaces is the pooled ingest-workspace gauge delta
	// across all phases. Must be 0.
	LeakedWorkspaces int64
	// HealthzOK and MetricsOK report the ops endpoints stayed up and
	// scrapeable on the degraded server.
	HealthzOK, MetricsOK bool
	// ReapedWithin is how long the slow-loris connection survived past
	// its half-written frame; ReapBound is the 2×IdleTimeout gate.
	ReapedWithin, ReapBound time.Duration
	// DeadlineReaped is the backend's reap counter (want 1) and
	// HealthyConnSurvived that a concurrent well-behaved connection
	// kept ingesting after the reap.
	DeadlineReaped      uint64
	HealthyConnSurvived bool
	// Truncations and BitFlips count the chaos faults actually fired.
	Truncations, BitFlips uint64
	// Quarantines, QuarantineDropped and Readmitted cover the AP error
	// budget: corrupted frames quarantine the AP, its captures are
	// dropped, and cooldown expiry readmits it.
	Quarantines, QuarantineDropped uint64
	Readmitted                     bool
	// Shed is how many burst jobs the engine refused as too old;
	// ShedFixes how many still completed. Both must be positive: the
	// engine degrades, it does not stop.
	Shed      uint64
	ShedFixes int
}

// chaosCountDispatcher releases every flush and counts it.
type chaosCountDispatcher struct{ flushes atomic.Uint64 }

func (d *chaosCountDispatcher) Dispatch(_ uint32, caps []server.Capture) {
	d.flushes.Add(1)
	server.ReleaseAll(caps)
}

// chaosIngest pushes captures through the real wire: encode as one v3
// batch frame, decode into a pooled workspace, hand to the backend.
// Leaks in this path show up in the LeasedIngestWorkspaces gauge.
func chaosIngest(be *server.Backend, caps []server.Capture) error {
	frame, err := server.AppendBatch(nil, caps)
	if err != nil {
		return err
	}
	ws := server.GetIngestWorkspace()
	decoded, err := server.ReadBatchInto(bytes.NewReader(frame), ws)
	if err != nil {
		ws.Discard()
		return err
	}
	be.IngestBatch(decoded)
	return nil
}

// chaosSmallCaps builds n tiny self-owned captures for the wire-level
// phases (reap, quarantine), where the spectra never run.
func chaosSmallCaps(rng *rand.Rand, apID, clientID uint32, ts time.Time, n int) []server.Capture {
	caps := make([]server.Capture, n)
	for i := range caps {
		streams := make([][]complex128, 4)
		for a := range streams {
			row := make([]complex128, 16)
			for s := range row {
				row[s] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			streams[a] = row
		}
		caps[i] = server.Capture{APID: apID, ClientID: clientID, Seq: uint32(i), Timestamp: ts, Streams: streams}
	}
	return caps
}

// RunChaos regenerates the survive-a-hostile-network claim in four
// phases. (A) One of the walker's four APs dies mid-walk: with
// DegradedQuorum set, the walker keeps receiving fixes — every one
// flagged Degraded end-to-end — while the stationary client on the
// surviving APs produces *exactly* the trajectory of a no-fault
// control run, and no pooled ingest workspace leaks. (B) A slow-loris
// connection delivering half a frame (chaos truncation) is reaped
// within twice the idle timeout without disturbing a healthy
// connection. (C) Chaos bit-flipped frames burn through an AP's error
// budget: the AP is quarantined, its captures dropped, and cooldown
// expiry readmits it. (D) A burst against one worker sheds aged batch
// jobs with ErrOverloaded instead of stalling the queue.
func (tb *Testbed) RunChaos(opt ChaosOptions) (*Report, *ChaosResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.GridCell
	base := time.Unix(1700000000, 0).UTC()
	leased0 := server.LeasedIngestWorkspaces()

	res := &ChaosResult{PostKillSteps: opt.Steps - opt.KillStep, ReapBound: 2 * opt.IdleTimeout}
	r := &Report{ID: "chaos", Title: "AP kill, slow-loris, corrupted frames, overload burst"}

	// ---- Phase A: AP kill mid-walk, degraded-quorum serving ----

	// APs by wire ID (site index + 1); the killed AP is the walker's
	// last site, which the survivor's set must not contain.
	killedSite := opt.WalkerSites[len(opt.WalkerSites)-1]
	killedAP := uint32(killedSite + 1)
	apByID := map[uint32]*core.AP{}
	for _, s := range append(append([]int{}, opt.WalkerSites...), opt.SurvivorSites...) {
		if _, ok := apByID[uint32(s+1)]; !ok {
			apByID[uint32(s+1)] = &core.AP{Array: tb.NewArray(tb.Sites[s], opt.Capture)}
		}
		if uint32(s+1) == killedAP && s != killedSite {
			return nil, nil, fmt.Errorf("testbed: survivor site %d is the killed AP", s)
		}
	}
	for _, s := range opt.SurvivorSites {
		if s == killedSite {
			return nil, nil, fmt.Errorf("testbed: survivor sites must exclude killed site %d", killedSite)
		}
	}

	stepTime := func(i int) time.Time {
		return base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second)))
	}
	clientSites := map[uint32][]int{1: opt.WalkerSites, 2: opt.SurvivorSites}
	truthAt := func(id uint32, i int) geom.Point {
		if id == 1 {
			return trackingTruth(TrackingOptions{Dt: opt.Dt, Speed: opt.Speed}, i)
		}
		return geom.Pt(33, 3)
	}

	// Pre-generate every wire capture once, so the control and fault
	// runs (and the survivor in both) see identical inputs.
	wire := make([]map[uint32][]server.Capture, opt.Steps)
	for i := 0; i < opt.Steps; i++ {
		step := map[uint32][]server.Capture{}
		for _, id := range []uint32{1, 2} {
			var caps []server.Capture
			for _, s := range clientSites[id] {
				frames := tb.CaptureClient(truthAt(id, i), tb.Sites[s], opt.Capture, rng)
				for _, f := range frames {
					caps = append(caps, server.Capture{
						APID: uint32(s + 1), ClientID: id, Seq: uint32(i),
						Timestamp: stepTime(i), Streams: f.Streams,
					})
				}
			}
			step[id] = caps
		}
		wire[i] = step
	}

	// Both runs share a simulated clock: the backend's stuck-group age
	// and the tracker's dt arithmetic run on it, so "DegradedAfter
	// later" is a clock assignment, not a sleep. Atomic, because the
	// pre-sweep advance on a dead step happens while the survivor's
	// job (flushed at ingest) may still be reading Now from a worker.
	var simNanos atomic.Int64
	simNanos.Store(base.UnixNano())
	simNow := func() time.Time { return time.Unix(0, simNanos.Load()) }
	trackerOpt := opt.Tracker
	trackerOpt.Now = simNow

	type walkRun struct {
		smoothed      map[uint32][]geom.Point
		errsCM        map[uint32][]float64
		degradedFixes int
		missed        int
		eng           *engine.Engine
		be            *server.Backend
		sink          *engine.CaptureSink
	}
	runWalk := func(kill bool) (*walkRun, error) {
		out := &walkRun{smoothed: map[uint32][]geom.Point{}, errsCM: map[uint32][]float64{}}
		tracker := engine.NewTracker(trackerOpt)
		out.eng = engine.New(engine.Options{Config: cfg, Tracker: tracker})
		results := make(chan engine.Result, 8)
		out.sink = &engine.CaptureSink{
			Engine:   out.eng,
			Resolve:  func(apID uint32) *core.AP { return apByID[apID] },
			Min:      tb.Plan.Min,
			Max:      tb.Plan.Max,
			OnResult: func(r engine.Result) { results <- r },
			Now:      simNow,
		}
		out.be = server.NewBackendDispatcher(opt.Quorum, time.Second, out.sink)
		out.be.DegradedQuorum = opt.DegradedQuorum
		out.be.DegradedAfter = opt.DegradedAfter
		out.be.Now = simNow

		for i := 0; i < opt.Steps; i++ {
			simNanos.Store(stepTime(i).UnixNano())
			dead := kill && i >= opt.KillStep
			for _, id := range []uint32{2, 1} {
				caps := wire[i][id]
				if dead && id == 1 {
					live := make([]server.Capture, 0, len(caps))
					for _, c := range caps {
						if c.APID != killedAP {
							live = append(live, c)
						}
					}
					caps = live
				}
				if err := chaosIngest(out.be, caps); err != nil {
					return out, err
				}
			}
			if dead {
				// The walker's group is stuck one AP short of quorum;
				// DegradedAfter later the janitor sweep flushes it degraded.
				simNanos.Store(stepTime(i).Add(opt.DegradedAfter + 50*time.Millisecond).UnixNano())
				out.be.Sweep()
			}
			got := map[uint32]engine.Result{}
			deadline := time.After(30 * time.Second)
			for len(got) < 2 {
				select {
				case r := <-results:
					got[r.ClientID] = r
				case <-deadline:
					if _, ok := got[2]; !ok {
						return out, fmt.Errorf("testbed: no survivor fix at step %d", i)
					}
					out.missed++
					got[1] = engine.Result{ClientID: 1, Err: fmt.Errorf("missed")}
				}
			}
			for _, id := range []uint32{1, 2} {
				r := got[id]
				if r.Err != nil || r.Track == nil {
					if id == 2 {
						return out, fmt.Errorf("testbed: survivor fix failed at step %d: %v", i, r.Err)
					}
					continue
				}
				out.smoothed[id] = append(out.smoothed[id], r.Track.Smoothed)
				out.errsCM[id] = append(out.errsCM[id], r.Track.Smoothed.Dist(truthAt(id, i))*100)
				if id == 1 && dead && r.Degraded && r.Track.Degraded {
					out.degradedFixes++
				}
			}
		}
		return out, nil
	}

	ctrl, err := runWalk(false)
	if err != nil {
		if ctrl != nil && ctrl.eng != nil {
			ctrl.eng.Close()
		}
		return nil, nil, err
	}
	ctrl.eng.Drain()

	fault, err := runWalk(true)
	if err != nil {
		if fault != nil && fault.eng != nil {
			fault.eng.Close()
		}
		return nil, nil, err
	}
	res.DegradedFixes = fault.degradedFixes
	res.MissedFixes = fault.missed
	health := fault.be.Health()
	res.DegradedFlushes = health.DegradedFlushes

	// The degraded server's ops surface must stay up: /healthz green,
	// /metrics scrapeable with the fault counters present.
	srv := httptest.NewServer((&ops.Server{
		Engine: fault.eng, SynthCache: cfg.SynthCache, Steering: cfg.Steering,
		Backend: fault.be, Sink: fault.sink,
	}).Handler())
	if resp, err := srv.Client().Get(srv.URL + "/healthz"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		res.HealthzOK = resp.StatusCode == 200 && strings.TrimSpace(string(body)) == "ok"
	}
	if resp, err := srv.Client().Get(srv.URL + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		res.MetricsOK = resp.StatusCode == 200 &&
			strings.Contains(text, fmt.Sprintf("arraytrack_degraded_flushes_total %d", res.DegradedFlushes)) &&
			strings.Contains(text, "arraytrack_degraded_fixes_total") &&
			strings.Contains(text, "arraytrack_leased_ingest_workspaces")
	}
	srv.Close()
	fault.eng.Drain()

	// Survivor parity: identical captures through a faulting server
	// must yield an identical smoothed trajectory.
	for i := range ctrl.smoothed[2] {
		if i >= len(fault.smoothed[2]) || ctrl.smoothed[2][i] != fault.smoothed[2][i] {
			res.SurvivorMismatches++
		}
	}
	ctrlRMSE := rmseSqrt(ctrl.errsCM[2])
	res.SurvivorRMSECM = rmseSqrt(fault.errsCM[2])
	res.RMSEDeltaCM = res.SurvivorRMSECM - ctrlRMSE
	if res.RMSEDeltaCM < 0 {
		res.RMSEDeltaCM = -res.RMSEDeltaCM
	}
	res.WalkerRMSECM = rmseSqrt(fault.errsCM[1])

	r.Addf("phase A: killed AP %d (site %d) before step %d of %d", killedAP, killedSite, opt.KillStep+1, opt.Steps)
	r.Addf("  walker fixes post-kill: %d degraded, %d missed (want %d/0)",
		res.DegradedFixes, res.MissedFixes, res.PostKillSteps)
	r.Addf("  degraded flushes %d, walker RMSE %.1fcm (3 APs), survivor RMSE %.1fcm",
		res.DegradedFlushes, res.WalkerRMSECM, res.SurvivorRMSECM)
	r.Addf("  survivor vs control: %d step mismatches, RMSE delta %.3fcm", res.SurvivorMismatches, res.RMSEDeltaCM)
	r.Addf("  healthz ok %v, metrics scrape ok %v", res.HealthzOK, res.MetricsOK)

	// ---- Phase B: slow-loris vs the idle reaper ----

	reapDisp := &chaosCountDispatcher{}
	reapBE := server.NewBackendDispatcher(1, time.Second, reapDisp)
	reapBE.IdleTimeout = opt.IdleTimeout
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); reapBE.Serve(ctx, l) }()

	healthy, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		cancel()
		return nil, nil, err
	}
	stalled, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		healthy.Close()
		cancel()
		return nil, nil, err
	}
	// The healthy connection keeps feeding frames well inside the idle
	// timeout for the whole phase.
	healthyCaps := chaosSmallCaps(rng, 1, 100, base, 1)
	var healthyWG sync.WaitGroup
	stopHealthy := make(chan struct{})
	healthyWG.Add(1)
	go func() {
		defer healthyWG.Done()
		tick := time.NewTicker(opt.IdleTimeout / 5)
		defer tick.Stop()
		for {
			select {
			case <-stopHealthy:
				return
			case <-tick.C:
				if err := server.WriteBatch(healthy, healthyCaps); err != nil {
					return
				}
			}
		}
	}()

	// The slow loris: chaos truncation delivers half a frame and
	// reports success, then the connection goes quiet.
	lorisFrame, err := server.AppendBatch(nil, chaosSmallCaps(rng, 2, 101, base, 1))
	if err != nil {
		return nil, nil, err
	}
	loris := chaos.NewInjector(chaos.Plan{Seed: opt.Seed, TruncateAfterBytes: int64(len(lorisFrame) / 2)})
	lorisW := loris.Writer(stalled)
	for off, chunk := 0, len(lorisFrame)/4+1; off < len(lorisFrame); off += chunk {
		end := off + chunk
		if end > len(lorisFrame) {
			end = len(lorisFrame)
		}
		if _, err := lorisW.Write(lorisFrame[off:end]); err != nil {
			return nil, nil, err
		}
	}
	reapStart := time.Now()
	io.ReadAll(stalled) // unblocks when the server reaps the connection
	res.ReapedWithin = time.Since(reapStart)
	res.Truncations = loris.Stats().Truncations

	// The healthy connection must still be ingesting after the reap.
	flushesAtReap := reapDisp.flushes.Load()
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(opt.IdleTimeout / 5) {
		if reapDisp.flushes.Load() >= flushesAtReap+2 {
			res.HealthyConnSurvived = true
			break
		}
	}
	close(stopHealthy)
	healthyWG.Wait()
	healthy.Close()
	stalled.Close()
	cancel()
	<-serveDone
	res.DeadlineReaped = reapBE.Health().DeadlineReaped

	r.Addf("phase B: half-frame slow loris reaped in %v (bound %v), %d truncation injected",
		res.ReapedWithin.Round(time.Millisecond), res.ReapBound, res.Truncations)
	r.Addf("  deadline reaps %d, healthy connection survived: %v", res.DeadlineReaped, res.HealthyConnSurvived)

	// ---- Phase C: corrupted frames vs the AP error budget ----

	qNow := base
	quarDisp := &chaosCountDispatcher{}
	quarBE := server.NewBackendDispatcher(1, time.Second, quarDisp)
	quarBE.ErrorBudget = opt.ErrorBudget
	quarBE.Cooldown = 5 * time.Second
	quarBE.Now = func() time.Time { return qNow }

	goodFrame, err := server.AppendBatch(nil, chaosSmallCaps(rng, 9, 102, base, 1))
	if err != nil {
		return nil, nil, err
	}
	// Flip one bit in the frame's body-length field: the header parses
	// or the body-size check fails, deterministically, and the decode
	// error is charged to the AP that last spoke on the connection.
	flipper := chaos.NewInjector(chaos.Plan{Seed: opt.Seed + 1, FlipProb: 1})
	var flipped bytes.Buffer
	if _, err := flipper.Writer(&flipped).Write(goodFrame[4:8]); err != nil {
		return nil, nil, err
	}
	res.BitFlips = flipper.Stats().BitFlips
	corrupted := append(append(append([]byte{}, goodFrame[:4]...), flipped.Bytes()...), goodFrame[8:]...)

	for round := 0; round < opt.ErrorBudget; round++ {
		stream := append(append([]byte{}, goodFrame...), corrupted...)
		quarBE.ServeConn(bytes.NewReader(stream)) // good frame pins the AP, corrupt frame errors
	}
	res.Quarantines = quarBE.Health().Quarantines
	flushesBefore := quarDisp.flushes.Load()
	quarBE.ServeConn(bytes.NewReader(goodFrame)) // quarantined: dropped, not flushed
	res.QuarantineDropped = quarBE.Health().QuarantinedDropped
	qNow = qNow.Add(6 * time.Second) // past cooldown
	quarBE.ServeConn(bytes.NewReader(goodFrame))
	res.Readmitted = quarDisp.flushes.Load() == flushesBefore+1 && quarBE.Health().Quarantined == 0

	r.Addf("phase C: %d bit-flipped frames -> %d quarantine, %d captures dropped, readmitted after cooldown: %v",
		opt.ErrorBudget, res.Quarantines, res.QuarantineDropped, res.Readmitted)

	// ---- Phase D: overload burst vs shedding ----

	burstCfg := core.DefaultConfig(tb.Wavelength)
	burstCfg.GridCell = 0.25
	// A deep queue so the whole burst is admitted at once: the point is
	// aged-in-queue shedding, not Submit backpressure.
	burstEng := engine.New(engine.Options{Workers: 1, Queue: opt.BurstJobs, Config: burstCfg, ShedAfter: opt.ShedAfter})
	burstAPs := tb.APsFor(opt.WalkerSites, opt.Capture)
	burstFrames := make([][]core.FrameCapture, len(opt.WalkerSites))
	for si, s := range opt.WalkerSites {
		burstFrames[si] = tb.CaptureClient(truthAt(1, 0), tb.Sites[s], opt.Capture, rng)
	}
	var burstWG sync.WaitGroup
	var burstMu sync.Mutex
	for j := 0; j < opt.BurstJobs; j++ {
		burstWG.Add(1)
		err := burstEng.Submit(engine.Request{
			ClientID: uint32(200 + j), APs: burstAPs, Captures: burstFrames,
			Min: tb.Plan.Min, Max: tb.Plan.Max, Time: base,
		}, func(r engine.Result) {
			if r.Err == nil {
				burstMu.Lock()
				res.ShedFixes++
				burstMu.Unlock()
			}
			burstWG.Done()
		})
		if err != nil {
			burstWG.Done()
		}
	}
	burstWG.Wait()
	res.Shed = burstEng.Stats().Shed
	burstEng.Close()

	r.Addf("phase D: %d-job burst at one worker, shed-after %v: %d shed with ErrOverloaded, %d fixes completed",
		opt.BurstJobs, opt.ShedAfter, res.Shed, res.ShedFixes)

	res.LeakedWorkspaces = server.LeasedIngestWorkspaces() - leased0
	r.Addf("pooled ingest workspaces leaked across all phases: %d", res.LeakedWorkspaces)

	r.AddMetric("degraded_fixes", float64(res.DegradedFixes), "")
	r.AddMetric("post_kill_steps", float64(res.PostKillSteps), "")
	r.AddMetric("missed_fixes", float64(res.MissedFixes), "")
	r.AddMetric("survivor_step_mismatches", float64(res.SurvivorMismatches), "")
	r.AddMetric("survivor_rmse_delta_cm", res.RMSEDeltaCM, "cm")
	r.AddMetric("walker_rmse_cm", res.WalkerRMSECM, "cm")
	r.AddMetric("leaked_workspaces", float64(res.LeakedWorkspaces), "")
	boolMetric := func(name string, ok bool) {
		v := 0.0
		if ok {
			v = 1
		}
		r.AddMetric(name, v, "")
	}
	boolMetric("healthz_ok", res.HealthzOK)
	boolMetric("metrics_ok", res.MetricsOK)
	r.AddMetric("reap_ms", float64(res.ReapedWithin)/float64(time.Millisecond), "ms")
	r.AddMetric("reap_bound_ms", float64(res.ReapBound)/float64(time.Millisecond), "ms")
	boolMetric("healthy_conn_survived", res.HealthyConnSurvived)
	r.AddMetric("quarantines", float64(res.Quarantines), "")
	boolMetric("quarantine_readmitted", res.Readmitted)
	r.AddMetric("shed", float64(res.Shed), "")
	r.AddMetric("shed_fixes", float64(res.ShedFixes), "")
	return r, res, nil
}
