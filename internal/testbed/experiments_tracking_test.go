package testbed

import (
	"testing"

	"repro/internal/engine"
)

// trackingTestOptions shrinks the walk so the test stays quick while
// still covering the corner manoeuvre.
func trackingTestOptions() TrackingOptions {
	opt := DefaultTrackingOptions()
	opt.Steps = 16
	opt.Sites = []int{0, 1, 3, 5}
	return opt
}

// TestTrackingSmoothedBeatsRaw is the ISSUE's acceptance bar: driving
// the Kalman layer over a testbed roaming trajectory, the smoothed
// track must not be worse than the raw fixes (RMSE), and the streaming
// subscription must deliver every update.
func TestTrackingSmoothedBeatsRaw(t *testing.T) {
	tb := New()
	opt := trackingTestOptions()
	r, res, err := tb.RunTracking(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("raw RMSE %.1f cm, smoothed RMSE %.1f cm, gate rejects %d",
		res.RawRMSECM, res.SmoothedRMSECM, res.GateRejects)
	if res.SmoothedRMSECM > res.RawRMSECM {
		t.Fatalf("smoothed RMSE %.1f cm worse than raw %.1f cm", res.SmoothedRMSECM, res.RawRMSECM)
	}
	if len(res.RawErrsCM) != opt.Steps || len(res.SmoothedErrsCM) != opt.Steps {
		t.Fatalf("expected %d per-step errors, got %d/%d", opt.Steps, len(res.RawErrsCM), len(res.SmoothedErrsCM))
	}
	if res.Updates != opt.Steps {
		t.Fatalf("subscription streamed %d updates, want %d", res.Updates, opt.Steps)
	}
	var rawM, smoothM bool
	for _, m := range r.Metrics {
		switch m.Name {
		case "raw_rmse_cm":
			rawM = m.Value == res.RawRMSECM
		case "smoothed_rmse_cm":
			smoothM = m.Value == res.SmoothedRMSECM
		}
	}
	if !rawM || !smoothM {
		t.Fatal("report metrics must carry the RMSE headline numbers")
	}
}

// TestTrackingDeterministic: the experiment is a fixture for docs and
// CI artifacts, so two runs must agree exactly.
func TestTrackingDeterministic(t *testing.T) {
	tb := New()
	opt := trackingTestOptions()
	opt.Steps = 6
	_, a, err := tb.RunTracking(opt)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := tb.RunTracking(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.RawRMSECM != b.RawRMSECM || a.SmoothedRMSECM != b.SmoothedRMSECM {
		t.Fatalf("tracking not deterministic: %v/%v vs %v/%v",
			a.RawRMSECM, a.SmoothedRMSECM, b.RawRMSECM, b.SmoothedRMSECM)
	}
}

// TestRunPerfMeetsAllocTarget runs the perf experiment and enforces
// the acceptance criterion end to end: ≥3x fewer allocs/op for both
// the spectrum and the whole fix, against the *cached* allocating path
// (the seed's uncached path is far worse still).
func TestRunPerfMeetsAllocTarget(t *testing.T) {
	tb := New()
	opt := DefaultPerfOptions()
	opt.Clients = 6
	r, err := tb.RunPerf(opt)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, m := range r.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s missing", name)
		return 0
	}
	if red := get("spectrum_alloc_reduction"); red < 3 {
		t.Fatalf("spectrum alloc reduction %.1fx, want ≥3x", red)
	}
	if red := get("locate_alloc_reduction"); red < 3 {
		t.Fatalf("locate alloc reduction %.1fx, want ≥3x", red)
	}
	if ws := get("spectrum_allocs_workspace"); ws > 8 {
		t.Fatalf("workspace spectrum allocs %.0f, want ≤8", ws)
	}
}

// TestTrackerOptionsFlowThrough: gate/noise settings reach the
// engine's tracker.
func TestTrackerOptionsFlowThrough(t *testing.T) {
	tb := New()
	opt := trackingTestOptions()
	opt.Steps = 4
	opt.Tracker = engine.TrackerOptions{ProcessNoise: 2, MeasSigma: 1, Gate: -1}
	if _, _, err := tb.RunTracking(opt); err != nil {
		t.Fatal(err)
	}
}
