package testbed

import (
	"fmt"
	"strings"
)

// Report is one experiment's regenerated artifact: an identifier tying
// it to the paper's table/figure, a title, and preformatted text lines.
type Report struct {
	// ID matches the DESIGN.md experiment index (e.g. "fig13").
	ID string
	// Title describes the artifact.
	Title string
	// Lines are the rendered rows.
	Lines []string
}

// Addf appends a formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report with a header.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
