package testbed

import (
	"fmt"
	"strings"
)

// Report is one experiment's regenerated artifact: an identifier tying
// it to the paper's table/figure, a title, preformatted text lines,
// and machine-readable headline metrics (the perf-trajectory rows
// atbench's -json flag serializes).
type Report struct {
	// ID matches the DESIGN.md experiment index (e.g. "fig13").
	ID string
	// Title describes the artifact.
	Title string
	// Lines are the rendered rows.
	Lines []string
	// Metrics are the experiment's headline quantities in a form
	// tooling can diff across commits.
	Metrics []Metric
}

// Metric is one machine-readable headline number.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Addf appends a formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// AddMetric records a machine-readable headline number.
func (r *Report) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// String renders the report with a header.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
