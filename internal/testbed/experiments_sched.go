package testbed

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/stats"
)

// SchedOptions sizes the scheduler + predictive-localization
// experiment.
type SchedOptions struct {
	// Steps, Dt, Speed describe the tracked walk (as in the tracking
	// experiment).
	Steps int
	Dt    float64
	Speed float64
	// Sites indexes the AP sites that hear the client.
	Sites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// Cell is the synthesis pitch (the paper's 0.10 m by default, so
	// the speedup is measured on the real serving grid).
	Cell float64
	// LatencyCell is the pitch for the scheduler phases. Denser than
	// Cell, with the coarse screen disabled, so a batch fix is a long
	// flat surface sweep (~10–15 ms at the 2 cm default) — the
	// in-flight-blocking regime the ROADMAP flagged — while priority
	// traffic is cheap interactive region queries riding the lane.
	LatencyCell float64
	// Sigma is the predictive gate inflation (engine semantics).
	Sigma float64
	// Trials is the stage-timing repeat count (best-of).
	Trials int
	// BatchJobs is the backlog for the latency phase; PriorityJobs
	// interactive fixes are timed against it.
	BatchJobs, PriorityJobs int
	// FloodMillis is how long the hostile priority flood runs in the
	// starvation phase.
	FloodMillis int
	// Seed drives capture noise.
	Seed int64
}

// DefaultSchedOptions walks the corridor at the paper's 10 cm pitch
// and sizes the scheduler phases for a CI-friendly run.
func DefaultSchedOptions() SchedOptions {
	return SchedOptions{
		Steps:       24,
		Dt:          1.0,
		Speed:       1.2,
		Sites:       []int{0, 1, 2, 3, 4, 5},
		Capture:     DefaultCaptureOptions(),
		Cell:        0.10,
		LatencyCell: 0.02,
		// 3.5σ strictly covers the walk tracker's 3σ gate (the engine
		// clamps any lower value up to the gate) while keeping the
		// region a touch tighter than the 4σ engine default.
		Sigma:        3.5,
		Trials:       3,
		BatchJobs:    24,
		PriorityJobs: 8,
		FloodMillis:  300,
		Seed:         61,
	}
}

// RunSched measures the PR's two serving-path claims on the testbed:
//
//  1. Track-guided predictive localization — along a corridor walk,
//     the per-fix search stage (full-grid vs predicted-region with
//     verification) is timed on identical spectra, and two trackers
//     (full-grid serving vs predictive serving) are compared for
//     smoothed RMSE and fallback behaviour.
//  2. The scheduler — interactive priority p50/p99 against a batch
//     backlog with and without mid-surface preemption, and batch
//     completion under a hostile priority flood with and without
//     queue ageing (the starvation table).
//
// Emitted as metrics so `atbench -exp sched -json` extends the
// BENCH_*.json trajectory.
func (tb *Testbed) RunSched(opt SchedOptions) (*Report, error) {
	r := &Report{ID: "sched", Title: "engine scheduler + track-guided predictive localization"}
	if err := tb.schedPredictive(r, opt); err != nil {
		return nil, err
	}
	if err := tb.schedPriorityLatency(r, opt); err != nil {
		return nil, err
	}
	if err := tb.schedStarvation(r, opt); err != nil {
		return nil, err
	}
	return r, nil
}

// schedPredictive is phase 1: the walk.
func (tb *Testbed) schedPredictive(r *Report, opt SchedOptions) error {
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.Cell
	cfg.SynthCache = core.NewSynthCacheBudget(core.DefaultSynthCacheBudget)
	aps := tb.APsFor(opt.Sites, opt.Capture)
	trOpt := engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3}

	fullEng := engine.New(engine.Options{Workers: 2, Config: cfg, Tracker: engine.NewTracker(trOpt)})
	defer fullEng.Close()
	predEng := engine.New(engine.Options{Workers: 2, Config: cfg, Tracker: engine.NewTracker(trOpt),
		Predict: true, PredictSigma: opt.Sigma})
	defer predEng.Close()

	// Stage timing measures the batch serving path: one AP worker, one
	// synth worker, same cache.
	stageCfg := cfg
	stageCfg.APWorkers = 1
	stageCfg.SynthWorkers = 1
	pipe := core.NewPipeline(stageCfg)
	sigma := opt.Sigma
	if g := trOpt.Gate; sigma < g {
		sigma = g
	}

	walkOpt := TrackingOptions{Steps: opt.Steps, Dt: opt.Dt, Speed: opt.Speed}
	base := time.Unix(1700000000, 0)
	var fullMS, predMS []float64
	var fullErrCM, predErrCM []float64
	predicted := 0

	r.Addf("%4s  %-12s %9s %9s %7s  %s", "step", "truth", "full", "tracked", "x", "served")
	for i := 0; i < opt.Steps; i++ {
		truth := trackingTruth(walkOpt, i)
		captures := make([][]core.FrameCapture, len(opt.Sites))
		for si, s := range opt.Sites {
			captures[si] = tb.CaptureClient(truth, tb.Sites[s], opt.Capture, rng)
		}
		at := base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second)))
		req := engine.Request{ClientID: 1, APs: aps, Captures: captures,
			Min: tb.Plan.Min, Max: tb.Plan.Max, Time: at}

		// Search-stage timing on the spectra this step produced, with
		// the exact region the predictive engine is about to use
		// (Predict must run before Locate advances the track).
		specs, err := pipe.ProcessAPs(aps, captures)
		if err != nil {
			return err
		}
		tFull := bestOf(opt.Trials, func() {
			if _, err := pipe.Synthesize(specs, tb.Plan.Min, tb.Plan.Max); err != nil {
				panic(err)
			}
		})
		fullMS = append(fullMS, float64(tFull)/float64(time.Millisecond))
		stage := "-"
		if pred, ok := predEng.Tracker().Predict(1, at, engine.DefaultPredictMinFixes); ok {
			region := engine.PredictRegion(pred, sigma, opt.Cell)
			tPred := bestOf(opt.Trials, func() {
				if _, _, err := pipe.SynthesizeRegionInterior(specs, tb.Plan.Min, tb.Plan.Max, region); err != nil {
					panic(err)
				}
			})
			predMS = append(predMS, float64(tPred)/float64(time.Millisecond))
			stage = fmt.Sprintf("%.1fx", float64(tFull)/float64(tPred))
		}

		rf := fullEng.Locate(req)
		rp := predEng.Locate(req)
		if rf.Err != nil {
			return rf.Err
		}
		if rp.Err != nil {
			return rp.Err
		}
		served := "full"
		if rp.Predicted {
			served = "region"
			predicted++
		}
		fullErrCM = append(fullErrCM, rf.Track.Smoothed.Dist(truth)*100)
		predErrCM = append(predErrCM, rp.Track.Smoothed.Dist(truth)*100)
		r.Addf("%4d  (%5.1f,%4.1f) %8.2fms %8.2fms %7s  %s",
			i+1, truth.X, truth.Y, fullMS[len(fullMS)-1],
			lastOr(predMS, fullMS[len(fullMS)-1]), stage, served)
	}

	if len(predMS) == 0 {
		return errors.New("testbed: no step produced a live track prediction")
	}
	sort.Float64s(fullMS)
	sort.Float64s(predMS)
	fullP50 := stats.Percentile(fullMS, 50)
	predP50 := stats.Percentile(predMS, 50)
	speedup := fullP50 / predP50
	fullRMSE := rmseSqrt(fullErrCM)
	predRMSE := rmseSqrt(predErrCM)
	st := predEng.Stats()
	attempts := st.Predicted + st.PredictFallbackBorder + st.PredictFallbackGate + st.PredictFallbackError
	fallbackPct := 0.0
	if attempts > 0 {
		fallbackPct = 100 * float64(attempts-st.Predicted) / float64(attempts)
	}

	r.Addf("")
	r.Addf("search stage p50: full %.2fms, tracked region %.2fms (%.1fx); p99 %.2f vs %.2fms",
		fullP50, predP50, speedup, stats.Percentile(fullMS, 99), stats.Percentile(predMS, 99))
	r.Addf("smoothed RMSE: full-grid serving %.0fcm, predictive serving %.0fcm", fullRMSE, predRMSE)
	r.Addf("served predictively %d/%d fixes (fallbacks: border %d, gate %d, error %d, no-track %d)",
		predicted, opt.Steps, st.PredictFallbackBorder, st.PredictFallbackGate,
		st.PredictFallbackError, st.PredictFallbackNoTrack)
	r.AddMetric("sched_search_p50_full_ms", fullP50, "ms")
	r.AddMetric("sched_search_p50_pred_ms", predP50, "ms")
	r.AddMetric("sched_search_speedup_p50", speedup, "x")
	r.AddMetric("sched_rmse_full_cm", fullRMSE, "cm")
	r.AddMetric("sched_rmse_pred_cm", predRMSE, "cm")
	r.AddMetric("sched_pred_share_pct", 100*float64(predicted)/float64(opt.Steps), "%")
	r.AddMetric("sched_fallback_pct", fallbackPct, "%")
	return nil
}

func lastOr(xs []float64, def float64) float64 {
	if len(xs) == 0 {
		return def
	}
	return xs[len(xs)-1]
}

// schedLatencyConfig is the dense-floor serving config the scheduler
// phases run: LatencyCell pitch with the coarse screen disabled, so a
// full-grid batch fix is one long surface sweep with a yield point
// every chunk.
func (tb *Testbed) schedLatencyConfig(opt SchedOptions) core.Config {
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.LatencyCell
	cfg.CoarseFactor = 1
	// Dense-floor LUTs are ~19 MB per AP at 2 cm; a roomy budget keeps
	// all of them resident even when several hash into one shard, so
	// the phase times scheduling, not LUT rebuild churn.
	cfg.SynthCache = core.NewSynthCacheBudget(1 << 30)
	return cfg
}

// priorityRegionFor boxes the interactive query 1.5 m around the
// request's client — the PR 4 "zoomed dashboard" access pattern.
func (tb *Testbed) priorityRegionFor(i int) core.Region {
	c := tb.Clients[i%len(tb.Clients)]
	return core.Region{Min: geom.Pt(c.X-1.5, c.Y-1.5), Max: geom.Pt(c.X+1.5, c.Y+1.5)}
}

// schedPriorityLatency is phase 2: interactive priority region
// queries against a heavy full-grid batch backlog, preemption on vs
// off.
func (tb *Testbed) schedPriorityLatency(r *Report, opt SchedOptions) error {
	tOpt := DefaultThroughputOptions()
	tOpt.GridCell = opt.LatencyCell
	reqs := tb.ThroughputRequests(opt.BatchJobs, tOpt)

	measure := func(noPreempt bool) (p50, p99, batchP99 float64, stolen uint64, err error) {
		eng := engine.New(engine.Options{Workers: 2, Queue: len(reqs) + 8,
			PriorityQueue: opt.PriorityJobs + 2, // deep enough that Submit never blocks the timer
			AgeLimit:      -1,                   // isolate preemption; ageing has its own phase
			Config:        tb.schedLatencyConfig(opt), NoPreempt: noPreempt})
		defer eng.Close()
		if r := eng.Locate(reqs[0]); r.Err != nil { // warm LUT + steering caches
			return 0, 0, 0, 0, r.Err
		}
		var mu sync.Mutex
		var batchMS, prioMS []float64
		var wg sync.WaitGroup
		submit := func(req engine.Request, out *[]float64) error {
			wg.Add(1)
			start := time.Now()
			return eng.Submit(req, func(res engine.Result) {
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				if res.Err == nil {
					*out = append(*out, ms)
				}
				mu.Unlock()
				wg.Done()
			})
		}
		for _, q := range reqs {
			if err := submit(q, &batchMS); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		// Interactive queries arrive while batch fixes are in flight —
		// the arrival pattern preemption exists for. Each lands
		// mid-surface of some in-flight batch fix; the spacing keeps
		// arrivals inside the backlog window.
		time.Sleep(100 * time.Millisecond)
		for i := 0; i < opt.PriorityJobs; i++ {
			q := reqs[i%len(reqs)]
			q.ClientID = uint32(900 + i)
			q.Priority = true
			q.Region = tb.priorityRegionFor(i)
			if err := submit(q, &prioMS); err != nil {
				return 0, 0, 0, 0, err
			}
			time.Sleep(75 * time.Millisecond)
		}
		wg.Wait()
		if len(prioMS) < opt.PriorityJobs {
			return 0, 0, 0, 0, fmt.Errorf("only %d/%d priority fixes succeeded", len(prioMS), opt.PriorityJobs)
		}
		sort.Float64s(prioMS)
		sort.Float64s(batchMS)
		return stats.Percentile(prioMS, 50), stats.Percentile(prioMS, 99),
			stats.Percentile(batchMS, 99), eng.Stats().PriorityStolen, nil
	}

	p50y, p99y, batchP99, stolen, err := measure(false)
	if err != nil {
		return err
	}
	p50n, p99n, _, _, err := measure(true)
	if err != nil {
		return err
	}
	r.Addf("")
	r.Addf("interactive region fix vs %d-job full-grid backlog @ %.2fm: preempt p50 %.1fms p99 %.1fms (%d stolen), no-preempt p50 %.1fms p99 %.1fms, batch p99 %.1fms",
		opt.BatchJobs, opt.LatencyCell, p50y, p99y, stolen, p50n, p99n, batchP99)
	r.AddMetric("sched_prio_p50_preempt_ms", p50y, "ms")
	r.AddMetric("sched_prio_p99_preempt_ms", p99y, "ms")
	r.AddMetric("sched_prio_p99_nopreempt_ms", p99n, "ms")
	r.AddMetric("sched_batch_p99_ms", batchP99, "ms")
	return nil
}

// schedStarvation is phase 3: batch completion under a hostile
// priority flood, ageing on vs off.
func (tb *Testbed) schedStarvation(r *Report, opt SchedOptions) error {
	tOpt := DefaultThroughputOptions()
	tOpt.GridCell = opt.LatencyCell
	reqs := tb.ThroughputRequests(4, tOpt)
	floodFor := time.Duration(opt.FloodMillis) * time.Millisecond

	measure := func(ageLimit time.Duration) (p50, p99 float64, aged, quotaRej uint64, err error) {
		// NoPreempt isolates ageing: with steals enabled an aged-in
		// batch job would service the flood from inside its own
		// surface, muddying the wait measurement. Hostile jobs are
		// full-grid fixes, so the lane backlog (quota × hostiles ×
		// ~12 ms) deterministically outlasts the age limit.
		eng := engine.New(engine.Options{Workers: 1, Queue: 64, PriorityQueue: 64,
			ClientQuota: 4, AgeLimit: ageLimit, Config: tb.schedLatencyConfig(opt), NoPreempt: true})
		defer eng.Close()
		if r := eng.Locate(reqs[0]); r.Err != nil { // warm caches
			return 0, 0, 0, 0, r.Err
		}

		stop := make(chan struct{})
		var flood sync.WaitGroup
		for h := 0; h < 4; h++ { // four hostile identities, full quota each
			flood.Add(1)
			go func(h int) {
				defer flood.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := reqs[h%len(reqs)]
					q.ClientID = uint32(990 + h)
					q.Priority = true
					err := eng.Submit(q, func(engine.Result) {})
					if errors.Is(err, engine.ErrQuota) {
						time.Sleep(100 * time.Microsecond)
						continue
					}
					if err != nil {
						return
					}
				}
			}(h)
		}
		time.Sleep(10 * time.Millisecond) // let the flood occupy the lane

		// Two well-behaved batch clients, two jobs each.
		var mu sync.Mutex
		var waits []float64
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			for _, id := range []uint32{1, 2} {
				q := reqs[(i+1)%len(reqs)]
				q.ClientID = id
				wg.Add(1)
				start := time.Now()
				if err := eng.Submit(q, func(res engine.Result) {
					ms := float64(time.Since(start)) / float64(time.Millisecond)
					mu.Lock()
					if res.Err == nil {
						waits = append(waits, ms)
					}
					mu.Unlock()
					wg.Done()
				}); err != nil {
					return 0, 0, 0, 0, err
				}
			}
		}
		time.Sleep(floodFor)
		close(stop)
		flood.Wait()
		wg.Wait()
		if len(waits) != 4 {
			return 0, 0, 0, 0, fmt.Errorf("only %d/4 batch fixes succeeded", len(waits))
		}
		sort.Float64s(waits)
		st := eng.Stats()
		return stats.Percentile(waits, 50), stats.Percentile(waits, 99), st.AgedBatch, st.QuotaRejected, nil
	}

	p50a, p99a, aged, quotaA, err := measure(40 * time.Millisecond)
	if err != nil {
		return err
	}
	p50n, p99n, _, _, err := measure(-1)
	if err != nil {
		return err
	}
	r.Addf("batch under %dms hostile priority flood: ageing p50 %.0fms p99 %.0fms (%d promoted, %d quota-rejected), no ageing p50 %.0fms p99 %.0fms",
		opt.FloodMillis, p50a, p99a, aged, quotaA, p50n, p99n)
	r.AddMetric("sched_batch_flood_p99_aged_ms", p99a, "ms")
	r.AddMetric("sched_batch_flood_p99_noage_ms", p99n, "ms")
	r.AddMetric("sched_flood_aged_promotions", float64(aged), "")
	r.AddMetric("sched_flood_quota_rejects", float64(quotaA), "")
	return nil
}
