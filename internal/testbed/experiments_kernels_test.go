package testbed

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestKernelsExactOn205Scenes is the sprint's exactness pin at full
// testbed scale: over all 205 scenes (41 clients × [all-six plus four
// 3-AP combos]) the fast kernel stack — heap-ordered branch-and-bound
// pick plus rotation-guarded hill climb — must produce the
// bit-identical refined argmax cell and localized fix of the retained
// reference pair (linear bound scan + scalar climb). No tolerance:
// the kernels claim exact replacement, not approximation.
func TestKernelsExactOn205Scenes(t *testing.T) {
	tb := New()
	specs, _, err := tb.spectraForAll(DefaultAccuracyOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: 0.10, Workers: 1, Cache: core.NewSynthCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: 0.10, Workers: 1, Cache: core.NewSynthCache(),
		LinearPick: true, ScalarHillClimb: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	combos := [][]int{{0, 1, 2, 3, 4, 5}}
	combos = append(combos, Combinations(len(tb.Sites), 3)[:4]...)
	checked := 0
	for ci := range specs {
		for _, combo := range combos {
			scene := make([]core.APSpectrum, len(combo))
			for i, si := range combo {
				scene[i] = core.APSpectrum{Pos: tb.Sites[si].Pos, Spectrum: specs[ci][si]}
			}
			gotCell, err := fast.RefinedArgmaxCell(scene)
			if err != nil {
				t.Fatal(err)
			}
			wantCell, err := ref.RefinedArgmaxCell(scene)
			if err != nil {
				t.Fatal(err)
			}
			if gotCell != wantCell {
				t.Fatalf("client %d combo %v: fast argmax cell %d != reference %d", ci, combo, gotCell, wantCell)
			}
			got, err := fast.Localize(scene)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Localize(scene)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("client %d combo %v: fast fix %v != reference %v — not bit-identical", ci, combo, got, want)
			}
			checked++
		}
	}
	if checked != 205 {
		t.Fatalf("swept %d scenes, want 205", checked)
	}
	t.Logf("fast kernels bit-identical to reference on all %d testbed scenes", checked)
}

// TestRunKernelsMeetsTargets runs the kernels experiment and enforces
// the sprint's headline claims. Structural claims (bit-identical
// fixes, guard prune rate, degenerate bound-visit collapse, warm
// dense-pitch hit rate) are deterministic and asserted outright; the
// timing claims take the best of a few attempts because the CI host
// is shared and often single-core — noise only ever subtracts
// speedup, and a real regression fails every attempt.
func TestRunKernelsMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("kernel timings are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("kernels gate skipped in -short mode")
	}
	tb := New()
	opt := DefaultKernelsOptions()

	const attempts = 3
	var lastErrs []string
	for a := 0; a < attempts; a++ {
		r, err := tb.RunKernels(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range r.Lines {
			t.Log(l)
		}
		get := func(name string) float64 {
			for _, m := range r.Metrics {
				if m.Name == name {
					return m.Value
				}
			}
			t.Fatalf("metric %q missing", name)
			return 0
		}
		// Deterministic claims: fail immediately, retries cannot help.
		if pct := get("kernels_exact_fix_match_pct"); pct != 100 {
			t.Fatalf("fast fix bit-identical on %.0f%% of scenes, want 100%%", pct)
		}
		if pct := get("kernels_climb_pruned_pct"); pct < 40 {
			t.Fatalf("rotation guard pruned %.0f%% of probes, want ≥40%%", pct)
		}
		if ratio := get("kernels_bnb_degen_ratio"); ratio < 10 {
			t.Fatalf("degenerate-screen bound visits only %.1fx below linear, want ≥10x", ratio)
		}
		if hit := get("kernels_cache_dense_hit_pct"); hit < 99.9 {
			t.Fatalf("warm dense-pitch hit rate %.1f%%, want 100%% (two-choice placement thrashed)", hit)
		}
		if sc := get("kernels_cache_second_choice"); sc < 1 {
			t.Fatalf("no second-choice placements recorded — two-choice path not exercised")
		}
		if sp := get("kernels_cache_spills"); sp != 0 {
			t.Fatalf("%.0f dense LUT spills at a 2-entries-per-shard budget, want 0", sp)
		}
		// Timing claims: collect and retry.
		lastErrs = nil
		if s := get("kernels_eig_speedup"); s < 1.5 {
			lastErrs = append(lastErrs, fmt.Sprintf("packed eig speedup %.2fx < 1.5x", s))
		}
		if s := get("kernels_scan_speedup"); s < 5.0 {
			lastErrs = append(lastErrs, fmt.Sprintf("packed MUSIC scan speedup %.2fx < 5x", s))
		}
		if s := get("kernels_localize_speedup"); s < 0.9 {
			lastErrs = append(lastErrs, fmt.Sprintf("fast localize at %.2fx of reference, below the 0.9x no-regression floor", s))
		}
		if ps := get("kernels_climb_probes_per_s"); ps < 100_000 {
			lastErrs = append(lastErrs, fmt.Sprintf("hill climb at %.0f probes/s below the 100k floor", ps))
		}
		if len(lastErrs) == 0 {
			return
		}
		t.Logf("attempt %d/%d missed targets: %v", a+1, attempts, lastErrs)
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}
