package testbed

import (
	"strings"
	"testing"
)

// These tests run each experiment at reduced scale and assert the
// structural and qualitative properties the paper's artifacts must
// show, so a regression anywhere in the pipeline fails loudly here.

func TestRunFig13Shape(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 8
	opt.MaxCombos = 3
	opt.APCounts = []int{3, 6}
	r, res, err := tb.RunFig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "CDF 6 APs") {
		t.Error("missing CDF section")
	}
	// More APs must not be worse on median (allow small jitter).
	m3 := medianOf(res.ErrorsCM[3])
	m6 := medianOf(res.ErrorsCM[6])
	if m6 > m3*1.2 {
		t.Errorf("6-AP median %v worse than 3-AP %v", m6, m3)
	}
}

func TestRunFig15Shape(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 8
	opt.MaxCombos = 3
	opt.APCounts = []int{3, 6}
	_, res, err := tb.RunFig15(opt)
	if err != nil {
		t.Fatal(err)
	}
	m6 := medianOf(res.ErrorsCM[6])
	if m6 > 150 {
		t.Errorf("full-pipeline 6-AP median %v cm implausibly high", m6)
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64{}, xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestRunFig17DirectSurvivesPillars(t *testing.T) {
	tb := New()
	r, err := tb.RunFig17(17)
	if err != nil {
		t.Fatal(err)
	}
	// With no pillars the direct peak is rank 1; behind two pillars it
	// must still be ranked (rank > 0) per the paper's claim.
	if !strings.Contains(r.Lines[1], "rank 1") {
		t.Errorf("unblocked direct not strongest: %q", r.Lines[1])
	}
	if strings.Contains(r.Lines[3], "rank 0") {
		t.Errorf("direct lost behind two pillars: %q", r.Lines[3])
	}
}

func TestRunFig19MoreSamplesStabler(t *testing.T) {
	tb := New()
	r, err := tb.RunFig19(19)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 4 {
		t.Fatalf("rows = %d", len(r.Lines))
	}
}

func TestRunFig20SidePeaksGrowAtLowSNR(t *testing.T) {
	tb := New()
	r, err := tb.RunFig20(20)
	if err != nil {
		t.Fatal(err)
	}
	// The last (lowest-SNR) row must report more side peaks than the
	// first data row.
	first := strings.Fields(r.Lines[1])
	last := strings.Fields(r.Lines[len(r.Lines)-1])
	if first[2] >= last[2] && first[2] != "0" {
		t.Errorf("side peaks did not grow: first %v last %v", first, last)
	}
}

func TestRunCollisionSICAccuracy(t *testing.T) {
	tb := New()
	r, err := tb.RunCollision(22)
	if err != nil {
		t.Fatal(err)
	}
	// The final line carries both AoA errors; neither should exceed
	// 10°.
	line := r.Lines[len(r.Lines)-1]
	if !strings.Contains(line, "AoA error") {
		t.Fatalf("unexpected final line %q", line)
	}
}

func TestRunLatencyBudget(t *testing.T) {
	tb := New()
	r, err := tb.RunLatency(23)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"Td", "Tt", "Tp", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency report missing %q", want)
		}
	}
}

func TestRunThreeDHeights(t *testing.T) {
	tb := New()
	r, err := tb.RunThreeD(31)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "height:") {
		t.Error("missing height summary")
	}
}

func TestRunCircularResolvesMirror(t *testing.T) {
	tb := New()
	r, err := tb.RunCircular(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 3 {
		t.Fatalf("rows = %d", len(r.Lines))
	}
	if !strings.Contains(r.Lines[1], "linear") || !strings.Contains(r.Lines[2], "circular") {
		t.Errorf("rows = %q", r.Lines)
	}
}

func TestRunCalibrationSweepMonotoneTail(t *testing.T) {
	tb := New()
	r, err := tb.RunCalibrationSweep(33)
	if err != nil {
		t.Fatal(err)
	}
	// Must contain the zero-residual and the 1-rad rows.
	out := r.String()
	if !strings.Contains(out, "0.00") || !strings.Contains(out, "1.00") {
		t.Errorf("sweep rows missing:\n%s", out)
	}
}

func TestRunBaselineOrdering(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 6
	opt.MaxCombos = 1
	r, err := tb.RunBaselineComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "ArrayTrack") || !strings.Contains(r.String(), "trilateration") {
		t.Errorf("baseline rows missing:\n%s", r.String())
	}
}

func TestRunFig14Renders(t *testing.T) {
	tb := New()
	r, err := tb.RunFig14(20, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "6 AP(s)") {
		t.Error("missing 6-AP heatmap")
	}
	// Out-of-range client index falls back to a default.
	if _, err := tb.RunFig14(-1, 14); err != nil {
		t.Errorf("fallback client: %v", err)
	}
}

func TestRunAblationRows(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 4
	opt.MaxCombos = 1
	opt.APCounts = []int{3}
	r, results, err := tb.RunAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("variants = %d", len(results))
	}
	if !strings.Contains(r.String(), "unoptimized") {
		t.Error("missing unoptimized row")
	}
}

func TestRunDetectionShape(t *testing.T) {
	tb := New()
	r, err := tb.RunDetection(5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 7 { // header + 6 SNR rows
		t.Fatalf("rows = %d", len(r.Lines))
	}
}

func TestRunFig16MoreAntennasBetter(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 6
	opt.MaxCombos = 1
	r, err := tb.RunFig16(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 4 {
		t.Fatalf("rows = %d", len(r.Lines))
	}
}

func TestRunFig18Rows(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 6
	opt.MaxCombos = 1
	r, err := tb.RunFig18(opt)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"original", "height", "orientation"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q row", want)
		}
	}
}
