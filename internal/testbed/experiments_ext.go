package testbed

import (
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/stats"
	"repro/internal/threed"
	"repro/internal/wifi"
)

// RunThreeD exercises the §4.3.1 future-work extension: paired
// horizontal + vertical arrays at three APs estimate clients in three
// dimensions. Reports plan and height errors over a set of clients at
// different heights.
func (tb *Testbed) RunThreeD(seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	const apHeight = 2.5
	siteIdx := []int{0, 2, 4}
	capOpt := DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.UseSuppression = false // one frame per AP in this experiment
	sig := wifi.Preamble40()

	clients := []threed.Point3{
		{X: 8, Y: 6, Z: 1.0},
		{X: 15, Y: 7, Z: 0.3}, // on the floor (§4.3.1's ground-level case)
		{X: 25, Y: 6.5, Z: 1.5},
		{X: 33, Y: 9, Z: 1.1},
	}

	r := &Report{ID: "threed", Title: "3-D localization with vertical arrays (future work §4.3.1)"}
	r.Addf("%-22s %-22s %10s %10s", "true (x,y,z)", "estimate", "plan err", "height err")
	var planErrs, zErrs []float64
	for _, c := range clients {
		var aps []threed.APSpectra
		for _, si := range siteIdx {
			site := tb.Sites[si]
			arr := tb.NewArray(site, capOpt)
			recH := tb.Model.Receive(c.Plan(), arr, sig, channel.RxConfig{
				TxPowerDBm:    capOpt.TxPowerDBm,
				NoiseFloorDBm: capOpt.NoiseFloorDBm,
				HeightDiff:    apHeight - c.Z,
				Rng:           rng,
			})
			az, err := core.ProcessAP(&core.AP{Array: arr}, []core.FrameCapture{{Streams: recH.Samples}}, cfg)
			if err != nil {
				return nil, err
			}
			recV := tb.Model.ReceiveVertical(c.Plan(), site.Pos, c.Z, apHeight, 8, tb.Wavelength/2, sig, channel.RxConfig{
				TxPowerDBm:    capOpt.TxPowerDBm,
				NoiseFloorDBm: capOpt.NoiseFloorDBm,
				Rng:           rng,
			})
			el, err := threed.ElevationSpectrum(recV.Samples, tb.Wavelength/2, tb.spectrumOptions())
			if err != nil {
				return nil, err
			}
			aps = append(aps, threed.APSpectra{Pos: site.Pos, Height: apHeight, Azimuth: az, Elevation: el})
		}
		got, err := threed.Locate3D(aps, tb.Plan.Min, tb.Plan.Max, 0, 3, 0.25, 0.25)
		if err != nil {
			return nil, err
		}
		planErr := got.Plan().Dist(c.Plan()) * 100
		zErr := math.Abs(got.Z-c.Z) * 100
		planErrs = append(planErrs, planErr)
		zErrs = append(zErrs, zErr)
		r.Addf("(%5.1f,%5.1f,%4.1f)    (%5.1f,%5.1f,%4.1f)    %7.0fcm %8.0fcm",
			c.X, c.Y, c.Z, got.X, got.Y, got.Z, planErr, zErr)
	}
	r.Addf("plan:   %v", stats.Summarize(planErrs))
	r.Addf("height: %v", stats.Summarize(zErrs))
	return r, nil
}

// RunCircular compares an 8-element circular array against the linear
// default (the §6 discussion): the circular array resolves the full
// 360° natively — no mirror ambiguity — at the cost of resolution for
// the same element count, and spatial smoothing does not apply to its
// geometry so coherent multipath hurts it more.
func (tb *Testbed) RunCircular(seed int64) (*Report, error) {
	capOpt := DefaultCaptureOptions()
	capOpt.Frames = 1
	sig := wifi.Preamble40()
	r := &Report{ID: "circular", Title: "linear vs circular array geometry (§6 discussion)"}
	r.Addf("%-10s %14s %14s %16s", "geometry", "AoA err med", "AoA err p90", "mirror resolved")

	for _, mode := range []string{"linear", "circular"} {
		rng := rand.New(rand.NewSource(seed))
		var errs []float64
		resolved := 0
		trials := 0
		for i := 0; i < 30; i++ {
			site := tb.Sites[rng.Intn(len(tb.Sites))]
			client := tb.Clients[rng.Intn(len(tb.Clients))]
			offAxis := math.Abs(math.Remainder(site.Pos.Bearing(client)-site.Orient, math.Pi))
			if offAxis < geom.Rad(20) {
				continue
			}
			truth := site.Pos.Bearing(client)
			var spec *music.Spectrum
			if mode == "linear" {
				arr := tb.NewArray(site, capOpt)
				rec := tb.Model.Receive(client, arr, sig, channel.RxConfig{
					TxPowerDBm: capOpt.TxPowerDBm, NoiseFloorDBm: capOpt.NoiseFloorDBm, Rng: rng,
				})
				var err error
				spec, err = music.ComputeSpectrum(arr, rec.Samples[:arr.N], tb.spectrumOptions())
				if err != nil {
					return nil, err
				}
			} else {
				// Same aperture budget: 8 elements on a circle of
				// radius λ/2.
				arr := array.NewCircular(site.Pos, tb.Wavelength/2, 8)
				rec := tb.Model.Receive(client, arr, sig, channel.RxConfig{
					TxPowerDBm: capOpt.TxPowerDBm, NoiseFloorDBm: capOpt.NoiseFloorDBm, Rng: rng,
				})
				spec = circularSpectrum(tb, arr, rec.Samples)
			}
			e := peakErrorDeg(spec, truth)
			if math.IsInf(e, 1) {
				continue
			}
			errs = append(errs, e)
			trials++
			// Mirror resolved: spectrum value at the mirror bearing is
			// clearly below the true bearing's.
			mirror := geom.NormalizeAngle(2*site.Orient - truth)
			if spec.At(mirror) < 0.5*spec.At(truth) {
				resolved++
			}
		}
		s := stats.Summarize(errs)
		r.Addf("%-10s %12.1f°  %12.1f°  %13d/%d", mode, s.Median, s.P90, resolved, trials)
	}
	return r, nil
}

// circularSpectrum computes plain MUSIC on a circular array: spatial
// smoothing needs a translational-invariant (linear) geometry, so the
// circular array runs unsmoothed — exactly the §6 trade-off.
func circularSpectrum(tb *Testbed, arr *array.Array, streams [][]complex128) *music.Spectrum {
	opt := tb.spectrumOptions()
	snaps := music.SnapshotsAt(streams, opt.SampleOffset, opt.MaxSamples)
	r, err := music.CorrelationMatrix(snaps)
	if err != nil {
		return music.NewSpectrum(music.DefaultBins)
	}
	noise, _, _, err := music.Subspaces(r, 0.05, arr.N/2)
	if err != nil {
		return music.NewSpectrum(music.DefaultBins)
	}
	return music.MUSIC(noise, func(th float64) []complex128 {
		return arr.SteeringVector(th, tb.Wavelength)
	}, music.DefaultBins)
}

// RunCalibrationSweep quantifies how residual phase-calibration error
// degrades localization — the engineering requirement behind §3's
// procedure. Residual per-element phase errors of the given standard
// deviations are injected after calibration and the 3-AP accuracy
// measured.
func (tb *Testbed) RunCalibrationSweep(seed int64) (*Report, error) {
	r := &Report{ID: "calib", Title: "localization vs residual calibration error (3 APs)"}
	r.Addf("%-18s %10s %10s", "residual σ (rad)", "median", "mean")
	siteIdx := []int{0, 2, 4}
	capOpt := DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	clients := sampleClients(tb.Clients, 10)

	for _, sigma := range []float64{0, 0.05, 0.15, 0.4, 1.0} {
		rng := rand.New(rand.NewSource(seed))
		var errs []float64
		for _, c := range clients {
			var aps []*core.AP
			var captures [][]core.FrameCapture
			for _, si := range siteIdx {
				site := tb.Sites[si]
				arr := tb.NewArray(site, capOpt)
				// True hardware offsets, random per AP; the same array
				// instance must capture the frames so the offsets are
				// baked into the samples.
				arr.RandomizePhaseOffsets(rng)
				// Measured calibration = truth + residual error.
				calib := make([]float64, arr.NumElements())
				for k := 1; k < len(calib); k++ {
					calib[k] = arr.PhaseOffsets[k] + rng.NormFloat64()*sigma
				}
				var frames []core.FrameCapture
				pos := c
				for f := 0; f < capOpt.Frames; f++ {
					rec := tb.Model.Receive(pos, arr, wifi.Preamble40(), channel.RxConfig{
						TxPowerDBm:    capOpt.TxPowerDBm,
						NoiseFloorDBm: capOpt.NoiseFloorDBm,
						Rng:           rng,
					})
					frames = append(frames, core.FrameCapture{Streams: rec.Samples})
					pos = c.Add(geom.Vec{
						X: (rng.Float64()*2 - 1) * capOpt.MoveSigma,
						Y: (rng.Float64()*2 - 1) * capOpt.MoveSigma,
					})
				}
				aps = append(aps, &core.AP{Array: arr, Calibration: calib})
				captures = append(captures, frames)
			}
			pos, _, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, cfg)
			if err != nil {
				return nil, err
			}
			errs = append(errs, pos.Dist(c)*100)
		}
		s := stats.Summarize(errs)
		r.Addf("%-18.2f %8.0fcm %8.0fcm", sigma, s.Median, s.Mean)
	}
	return r, nil
}
