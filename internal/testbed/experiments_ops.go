package testbed

import (
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/ops"
)

// OpsOptions sizes the operations experiment: a mid-walk kill→restore
// of the serving process, validated against an uninterrupted control
// run over identical captures.
type OpsOptions struct {
	// Steps is the number of fixes along the walk; KillStep is the step
	// before which the first process drains, snapshots, and exits.
	Steps, KillStep int
	// Dt is the seconds between fixes, Speed the walk speed in m/s.
	Dt, Speed float64
	// Sites indexes the AP sites that hear the clients.
	Sites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// GridCell is the synthesis pitch.
	GridCell float64
	// Tracker configures the Kalman layer (identically in both runs).
	Tracker engine.TrackerOptions
	// Seed drives the channel noise.
	Seed int64
}

// DefaultOpsOptions walks the corridor for 20 fixes and kills the
// server after the 10th.
func DefaultOpsOptions() OpsOptions {
	return OpsOptions{
		Steps:    20,
		KillStep: 10,
		Dt:       1.0,
		Speed:    1.2,
		Sites:    []int{0, 1, 2, 3, 4, 5},
		Capture:  DefaultCaptureOptions(),
		GridCell: 0.25,
		Tracker:  engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3},
		Seed:     67,
	}
}

// OpsResult is the machine-readable outcome of the kill→restore run.
type OpsResult struct {
	// TracksLost is how many live tracks did not survive the
	// snapshot→restore cycle. Must be 0.
	TracksLost int
	// StepMismatches counts post-restore steps whose smoothed position
	// differs (at all) from the uninterrupted run. Must be 0.
	StepMismatches int
	// RMSEDeltaCM is |control RMSE − restored-run RMSE| over the
	// walker's smoothed errors. Must be 0: restore is bit-identical.
	RMSEDeltaCM float64
	// SmoothedRMSECM is the restored run's walker RMSE (context).
	SmoothedRMSECM float64
	// RestoredTracks is how many tracks the snapshot carried across.
	RestoredTracks int
	// SnapshotBytes is the on-disk image size.
	SnapshotBytes int64
	// MetricsOK reports that the ops HTTP endpoint served a parseable
	// Prometheus exposition for the restored engine.
	MetricsOK bool
}

// opsClients returns each simulated client's true position at step i:
// client 1 walks the corridor, client 2 sits still in an office —
// a stationary track is the easiest one to lose in a restart, since
// its only updates are the ones the drain must not drop.
func opsClients(opt OpsOptions, i int) map[uint32]geom.Point {
	walk := trackingTruth(TrackingOptions{Dt: opt.Dt, Speed: opt.Speed}, i)
	return map[uint32]geom.Point{1: walk, 2: geom.Pt(33, 3)}
}

// opsStep runs one localization step for every client and records the
// smoothed positions and walker error.
func opsStep(tb *Testbed, eng *engine.Engine, opt OpsOptions, aps []*core.AP,
	captures map[uint32][][]core.FrameCapture, base time.Time, i int,
	smoothed map[uint32][]geom.Point) (walkerErrCM float64, err error) {
	at := base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second)))
	truth := opsClients(opt, i)
	for _, id := range []uint32{1, 2} {
		out := eng.Locate(engine.Request{
			ClientID: id,
			APs:      aps,
			Captures: captures[id],
			Min:      tb.Plan.Min,
			Max:      tb.Plan.Max,
			Time:     at,
		})
		if out.Err != nil {
			return 0, out.Err
		}
		if out.Track == nil {
			return 0, fmt.Errorf("testbed: no track update for client %d", id)
		}
		smoothed[id] = append(smoothed[id], out.Track.Smoothed)
		if id == 1 {
			walkerErrCM = out.Track.Smoothed.Dist(truth[1]) * 100
		}
	}
	return walkerErrCM, nil
}

// RunOps regenerates the run-it-like-a-service claim: a serving
// process killed mid-walk and restored from its snapshot must lose no
// tracks and produce *exactly* the smoothed trajectory an
// uninterrupted process produces — the snapshot carries the full
// Kalman state, so the restart is invisible in the output. Captures
// are generated once and fed to both runs, so any divergence is the
// restore path's fault, not the channel model's.
func (tb *Testbed) RunOps(opt OpsOptions) (*Report, *OpsResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.GridCell
	aps := tb.APsFor(opt.Sites, opt.Capture)
	base := time.Unix(1700000000, 0)

	// Pre-generate every capture so both runs see identical inputs.
	allCaptures := make([]map[uint32][][]core.FrameCapture, opt.Steps)
	for i := 0; i < opt.Steps; i++ {
		truth := opsClients(opt, i)
		step := make(map[uint32][][]core.FrameCapture, len(truth))
		for _, id := range []uint32{1, 2} {
			captures := make([][]core.FrameCapture, len(opt.Sites))
			for si, s := range opt.Sites {
				captures[si] = tb.CaptureClient(truth[id], tb.Sites[s], opt.Capture, rng)
			}
			step[id] = captures
		}
		allCaptures[i] = step
	}

	res := &OpsResult{}
	r := &Report{ID: "ops", Title: "kill→snapshot→restore mid-walk vs uninterrupted run"}

	// The experiment replays 2023-era timestamps, so the trackers run on
	// the simulated clock — otherwise the snapshot's TTL check would
	// judge every track stale against the real wall clock. Both runs
	// advance the same clock variable; they execute sequentially.
	simNow := base
	trackerOpt := opt.Tracker
	trackerOpt.Now = func() time.Time { return simNow }
	stepTime := func(i int) time.Time {
		return base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second)))
	}

	// Control: one process, no restart.
	ctrlSmoothed := map[uint32][]geom.Point{}
	var ctrlErrs []float64
	{
		tracker := engine.NewTracker(trackerOpt)
		eng := engine.New(engine.Options{Config: cfg, Tracker: tracker})
		for i := 0; i < opt.Steps; i++ {
			simNow = stepTime(i)
			e, err := opsStep(tb, eng, opt, aps, allCaptures[i], base, i, ctrlSmoothed)
			if err != nil {
				eng.Close()
				return nil, nil, err
			}
			ctrlErrs = append(ctrlErrs, e)
		}
		eng.Drain()
	}

	// Victim: killed after KillStep steps — drain, snapshot to disk,
	// then a brand-new tracker+engine restores and finishes the walk.
	dir, err := os.MkdirTemp("", "atops")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "tracks.json")

	restSmoothed := map[uint32][]geom.Point{}
	var restErrs []float64
	tracker := engine.NewTracker(trackerOpt)
	eng := engine.New(engine.Options{Config: cfg, Tracker: tracker})
	for i := 0; i < opt.KillStep; i++ {
		simNow = stepTime(i)
		e, err := opsStep(tb, eng, opt, aps, allCaptures[i], base, i, restSmoothed)
		if err != nil {
			eng.Close()
			return nil, nil, err
		}
		restErrs = append(restErrs, e)
	}
	liveBefore := len(tracker.Clients())
	eng.Drain() // graceful: refuse, flush, quiesce
	if err := ops.Save(snapPath, ops.NewSnapshot(tracker, base.UnixNano())); err != nil {
		return nil, nil, err
	}
	if fi, err := os.Stat(snapPath); err == nil {
		res.SnapshotBytes = fi.Size()
	}

	loaded, err := ops.Load(snapPath)
	if err != nil {
		return nil, nil, err
	}
	tracker = engine.NewTracker(trackerOpt)
	res.RestoredTracks = tracker.Restore(loaded.Tracks)
	res.TracksLost = liveBefore - res.RestoredTracks
	eng = engine.New(engine.Options{Config: cfg, Tracker: tracker})
	for i := opt.KillStep; i < opt.Steps; i++ {
		simNow = stepTime(i)
		e, err := opsStep(tb, eng, opt, aps, allCaptures[i], base, i, restSmoothed)
		if err != nil {
			eng.Close()
			return nil, nil, err
		}
		restErrs = append(restErrs, e)
	}

	// The restored engine's ops endpoint must serve a scrapeable
	// exposition — the same surface CI curls on the live server.
	srv := httptest.NewServer((&ops.Server{Engine: eng, SynthCache: cfg.SynthCache, Steering: cfg.Steering}).Handler())
	if resp, err := srv.Client().Get(srv.URL + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		res.MetricsOK = resp.StatusCode == 200 &&
			strings.Contains(string(body), "arraytrack_fixes_total") &&
			strings.Contains(string(body), "arraytrack_tracked_clients 2")
	}
	srv.Close()
	eng.Drain()

	// Compare the two runs step by step.
	r.Addf("%4s  %-14s %-14s %-14s  %s", "step", "truth", "control", "restored", "")
	for i := 0; i < opt.Steps; i++ {
		truth := opsClients(opt, i)[1]
		c, g := ctrlSmoothed[1][i], restSmoothed[1][i]
		mark := ""
		if i == opt.KillStep {
			mark = "<- restored here"
		}
		for _, id := range []uint32{1, 2} {
			if ctrlSmoothed[id][i] != restSmoothed[id][i] {
				res.StepMismatches++
			}
		}
		r.Addf("%4d  (%5.1f,%4.1f)   (%5.1f,%4.1f)   (%5.1f,%4.1f)  %s",
			i+1, truth.X, truth.Y, c.X, c.Y, g.X, g.Y, mark)
	}
	ctrlRMSE, restRMSE := rmseSqrt(ctrlErrs), rmseSqrt(restErrs)
	res.SmoothedRMSECM = restRMSE
	res.RMSEDeltaCM = restRMSE - ctrlRMSE
	if res.RMSEDeltaCM < 0 {
		res.RMSEDeltaCM = -res.RMSEDeltaCM
	}

	r.Addf("")
	r.Addf("killed after step %d of %d; snapshot %d bytes, %d tracks restored, %d lost",
		opt.KillStep, opt.Steps, res.SnapshotBytes, res.RestoredTracks, res.TracksLost)
	r.Addf("walker smoothed RMSE: control %.1fcm, restored %.1fcm (delta %.3fcm)",
		ctrlRMSE, restRMSE, res.RMSEDeltaCM)
	r.Addf("per-step smoothed mismatches across both clients: %d", res.StepMismatches)
	r.Addf("metrics endpoint scrape ok: %v", res.MetricsOK)
	r.AddMetric("tracks_lost", float64(res.TracksLost), "")
	r.AddMetric("restored_tracks", float64(res.RestoredTracks), "")
	r.AddMetric("step_mismatches", float64(res.StepMismatches), "")
	r.AddMetric("rmse_delta_cm", res.RMSEDeltaCM, "cm")
	r.AddMetric("smoothed_rmse_cm", res.SmoothedRMSECM, "cm")
	r.AddMetric("snapshot_bytes", float64(res.SnapshotBytes), "B")
	metricsOK := 0.0
	if res.MetricsOK {
		metricsOK = 1
	}
	r.AddMetric("metrics_endpoint_ok", metricsOK, "")
	return r, res, nil
}
