package testbed

import "testing"

// TestRunSchedMeetsTargets runs the scheduler + predictive experiment
// (capped) and enforces the PR's acceptance gates:
//
//   - track-guided fixes are ≥3x faster (p50, search stage) than
//     full-grid fixes on the tracking scenes;
//   - smoothed RMSE under predictive serving is no worse than the
//     full-grid tracker baseline;
//   - most steady-state fixes are actually served predictively;
//   - with mid-surface preemption, interactive priority p99 is no
//     worse than the PR 4-style lane (same workload, no preemption);
//   - queue ageing bounds batch completion under a hostile priority
//     flood (the no-ageing control starves until the flood ends).
func TestRunSchedMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("instrumentation skews the latency distribution; the gate runs in the non-race pass")
	}
	tb := New()
	opt := DefaultSchedOptions()
	opt.Steps = 12
	opt.BatchJobs = 12
	opt.PriorityJobs = 6
	opt.FloodMillis = 150
	opt.Trials = 2
	r, err := tb.RunSched(opt)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, m := range r.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s missing", name)
		return 0
	}

	if sp := get("sched_search_speedup_p50"); sp < 3 {
		t.Errorf("track-guided search speedup p50 = %.2fx, want ≥3x", sp)
	}
	full, pred := get("sched_rmse_full_cm"), get("sched_rmse_pred_cm")
	if pred > full+2 {
		t.Errorf("predictive RMSE %.1fcm worse than full-grid baseline %.1fcm", pred, full)
	}
	if share := get("sched_pred_share_pct"); share < 50 {
		t.Errorf("predictive share %.0f%%, want ≥50%% on a steady walk", share)
	}
	p99y, p99n := get("sched_prio_p99_preempt_ms"), get("sched_prio_p99_nopreempt_ms")
	if p99y > p99n {
		t.Errorf("priority p99 with preemption %.1fms exceeds the no-preempt lane %.1fms", p99y, p99n)
	}
	aged, noage := get("sched_batch_flood_p99_aged_ms"), get("sched_batch_flood_p99_noage_ms")
	if aged >= noage {
		t.Errorf("batch p99 under flood with ageing %.0fms not below the no-ageing control %.0fms", aged, noage)
	}
	if promos := get("sched_flood_aged_promotions"); promos < 1 {
		t.Errorf("ageing never promoted a batch job during the flood (%v)", promos)
	}
	t.Logf("speedup %.1fx, RMSE %.0f vs %.0fcm, share %.0f%%, prio p99 %.1f vs %.1fms, flood p99 %.0f vs %.0fms",
		get("sched_search_speedup_p50"), pred, full, get("sched_pred_share_pct"), p99y, p99n, aged, noage)
}
