package testbed

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRunIngestMeetsTargets is the ingest acceptance gate: batched v3
// ingest must clear 5x the seed per-record path's captures/sec/core
// at the paper's 8-antenna, 16-sample records, with at most 2
// steady-state allocations per capture, and an absolute throughput
// floor so the speedup cannot be met by regressing both paths.
//
// The speedup is a capability claim measured on loopback sockets of a
// shared, often single-core CI host, so the gate takes the best of a
// few full runs: external noise only ever subtracts throughput, and a
// regression in the batch path fails every attempt.
func TestRunIngestMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("flood timing is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("flood gate skipped in -short mode")
	}
	tb := New()
	opt := DefaultIngestOptions()
	// The gate only needs the 8x16 geometry; the full sweep is
	// atbench's job.
	opt.Shapes = []IngestShape{{8, 16}}
	opt.BatchSizes = []int{32}
	opt.Conns = 4
	opt.Trials = 7

	const attempts = 3
	var lastErrs []string
	for a := 0; a < attempts; a++ {
		r, err := tb.RunIngest(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range r.Lines {
			t.Log(l)
		}
		get := func(name string) float64 {
			for _, m := range r.Metrics {
				if m.Name == name {
					return m.Value
				}
			}
			t.Fatalf("metric %q missing", name)
			return 0
		}
		lastErrs = nil
		if s := get("ingest_speedup_8x16"); s < 5.0 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 ingest speedup %.2fx < 5x over the seed per-record path", s))
		}
		if al := get("ingest_allocs_batch32_8x16"); al > 2.0 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 steady-state allocs/capture %.2f > 2", al))
		}
		if cps := get("ingest_cps_batch32_8x16"); cps < 500_000 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 ingest rate %.0f caps/s/core below the 500k floor", cps))
		}
		if len(lastErrs) == 0 {
			return
		}
		t.Logf("attempt %d/%d missed targets: %v", a+1, attempts, lastErrs)
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}

// TestUDPFloodSmallRcvbufLossAccounted pins the fire-and-forget
// contract's honesty clause: when the kernel receive buffer is
// deliberately too small for the flood, captures ARE lost — and the
// backend's per-AP sequence accounting must say so, not hide it. The
// flood lands before anyone reads the socket, so the kernel's drops
// are deterministic: whatever exceeds the buffer is gone, and the
// sequence numbers of what survives expose the gaps.
func TestUDPFloodSmallRcvbufLossAccounted(t *testing.T) {
	opt := DefaultIngestOptions()
	opt.Captures = 1024
	caps := ingestFlood(opt, IngestShape{2, 8})
	// One AP, strictly monotonic sequence: every dropped datagram
	// must surface as a sequence gap.
	for i := range caps {
		caps[i].APID = 1
		caps[i].Seq = uint32(i)
	}
	grams := serializeDatagrams(caps, 4)

	be := server.NewBackendDispatcher(1, time.Second, releaseDispatcher{})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		t.Fatal("loopback listener is not a UDPConn")
	}
	if err := uc.SetReadBuffer(1 << 12); err != nil {
		t.Skipf("cannot shrink the receive buffer on this platform: %v", err)
	}
	tx, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	for _, g := range grams {
		if _, err := tx.Write(g); err != nil {
			t.Fatal(err)
		}
	}

	// Only now does the reader start: it drains what the 4 KiB buffer
	// held and nothing more.
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = be.ServeUDP(ctx, pc)
	}()
	settle := func() uint64 {
		deadline := time.Now().Add(2 * time.Second)
		var got uint64
		for time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			if n := be.UDP().Captures; n == got && n > 0 {
				break
			} else {
				got = n
			}
		}
		return got
	}
	settled := settle()

	// The kernel kept the head of the flood and dropped the tail, so
	// the survivors are gap-free so far — sequence accounting can only
	// see a hole once a later capture arrives. Resend the final
	// datagram into the now-empty buffer: its sequence number is far
	// past the last survivor, exposing the drop.
	if _, err := tx.Write(grams[len(grams)-1]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && be.UDP().Captures <= settled {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	pc.Close()
	<-served

	u := be.UDP()
	sent := uint64(len(caps))
	if u.Captures == 0 {
		t.Fatal("no captures survived: the buffer dropped the entire flood, nothing to account")
	}
	if u.Captures >= sent {
		t.Fatalf("all %d captures survived a 4 KiB receive buffer — flood too small to force loss", sent)
	}
	lossPct := 100 * float64(sent-u.Captures) / float64(sent)
	if u.SeqGaps == 0 {
		t.Fatalf("%.1f%% of the flood was lost but SeqGaps is 0 — loss is not being accounted", lossPct)
	}
	t.Logf("flood %d captures into a 4 KiB buffer: %d survived (%.1f%% lost), %d sequence gaps accounted",
		sent, u.Captures, lossPct, u.SeqGaps)
}
