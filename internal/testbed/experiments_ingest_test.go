package testbed

import (
	"fmt"
	"testing"
)

// TestRunIngestMeetsTargets is the ingest acceptance gate: batched v3
// ingest must clear 5x the seed per-record path's captures/sec/core
// at the paper's 8-antenna, 16-sample records, with at most 2
// steady-state allocations per capture, and an absolute throughput
// floor so the speedup cannot be met by regressing both paths.
//
// The speedup is a capability claim measured on loopback sockets of a
// shared, often single-core CI host, so the gate takes the best of a
// few full runs: external noise only ever subtracts throughput, and a
// regression in the batch path fails every attempt.
func TestRunIngestMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("flood timing is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("flood gate skipped in -short mode")
	}
	tb := New()
	opt := DefaultIngestOptions()
	// The gate only needs the 8x16 geometry; the full sweep is
	// atbench's job.
	opt.Shapes = []IngestShape{{8, 16}}
	opt.BatchSizes = []int{32}
	opt.Conns = 4
	opt.Trials = 7

	const attempts = 3
	var lastErrs []string
	for a := 0; a < attempts; a++ {
		r, err := tb.RunIngest(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range r.Lines {
			t.Log(l)
		}
		get := func(name string) float64 {
			for _, m := range r.Metrics {
				if m.Name == name {
					return m.Value
				}
			}
			t.Fatalf("metric %q missing", name)
			return 0
		}
		lastErrs = nil
		if s := get("ingest_speedup_8x16"); s < 5.0 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 ingest speedup %.2fx < 5x over the seed per-record path", s))
		}
		if al := get("ingest_allocs_batch32_8x16"); al > 2.0 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 steady-state allocs/capture %.2f > 2", al))
		}
		if cps := get("ingest_cps_batch32_8x16"); cps < 500_000 {
			lastErrs = append(lastErrs,
				fmt.Sprintf("batch32 ingest rate %.0f caps/s/core below the 500k floor", cps))
		}
		if len(lastErrs) == 0 {
			return
		}
		t.Logf("attempt %d/%d missed targets: %v", a+1, attempts, lastErrs)
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}
