package testbed

import "testing"

// opsTestOptions shrinks the walk so the test stays quick while still
// crossing the kill point with live tracks on both clients.
func opsTestOptions() OpsOptions {
	opt := DefaultOpsOptions()
	opt.Steps = 10
	opt.KillStep = 5
	opt.Sites = []int{0, 1, 3, 5}
	return opt
}

// TestRunOpsMeetsTargets is the ISSUE's acceptance bar for the
// snapshot/restore tentpole: a server killed mid-walk and restored
// from its snapshot loses zero tracks and reproduces the uninterrupted
// run's smoothed trajectory exactly (RMSE delta 0, no per-step
// divergence), and the ops endpoint serves a scrapeable exposition.
func TestRunOpsMeetsTargets(t *testing.T) {
	tb := New()
	r, res, err := tb.RunOps(opsTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restored %d tracks (%d lost), %d step mismatches, rmse delta %.3f cm",
		res.RestoredTracks, res.TracksLost, res.StepMismatches, res.RMSEDeltaCM)
	if res.TracksLost != 0 {
		t.Fatalf("%d tracks lost across the restart, want 0", res.TracksLost)
	}
	if res.RestoredTracks != 2 {
		t.Fatalf("restored %d tracks, want 2 (walker + stationary)", res.RestoredTracks)
	}
	if res.StepMismatches != 0 {
		t.Fatalf("%d post-restore steps diverged from the uninterrupted run, want 0", res.StepMismatches)
	}
	if res.RMSEDeltaCM != 0 {
		t.Fatalf("restored-run RMSE differs from control by %.6f cm, want exactly 0", res.RMSEDeltaCM)
	}
	if !res.MetricsOK {
		t.Fatal("ops metrics endpoint did not serve a valid exposition")
	}
	if res.SnapshotBytes <= 0 {
		t.Fatal("snapshot file is empty")
	}
	got := map[string]float64{}
	for _, m := range r.Metrics {
		got[m.Name] = m.Value
	}
	for _, name := range []string{"tracks_lost", "step_mismatches", "rmse_delta_cm", "metrics_endpoint_ok"} {
		if _, ok := got[name]; !ok {
			t.Fatalf("report metric %s missing (CI gates on it)", name)
		}
	}
	if got["tracks_lost"] != 0 || got["rmse_delta_cm"] != 0 || got["metrics_endpoint_ok"] != 1 {
		t.Fatalf("gate metrics %v", got)
	}
}
