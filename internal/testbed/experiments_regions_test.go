package testbed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// TestRegionGateOnTestbed is the acceptance gate: against a 32 MiB
// cache budget and 50 distinct ad-hoc regions, (1) the reported cache
// size never exceeds the budget at any point in the run, and (2) on
// every one of the 205 testbed scenes (41 clients × [all-six plus
// four 3-AP combos], the same sweep the synthesis exactness test
// covers) the region-query argmax equals the full-grid argmax
// restricted to that region, at the paper's 10 cm pitch.
func TestRegionGateOnTestbed(t *testing.T) {
	tb := New()
	specs, _, err := tb.spectraForAll(DefaultAccuracyOptions())
	if err != nil {
		t.Fatal(err)
	}
	const budget int64 = 32 << 20
	cache := core.NewSynthCacheBudget(budget)
	fullGrid, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{Cell: 0.10, Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	regions := regionWorkload(50, rng)

	combos := [][]int{{0, 1, 2, 3, 4, 5}}
	combos = append(combos, Combinations(len(tb.Sites), 3)[:4]...)
	var h core.Heatmap
	checked := 0
	for ci := range specs {
		for _, combo := range combos {
			scene := make([]core.APSpectrum, len(combo))
			for i, si := range combo {
				scene[i] = core.APSpectrum{Pos: tb.Sites[si].Pos, Spectrum: specs[ci][si]}
			}
			region := regions[checked%len(regions)]
			sg, err := core.NewSynthGridRegion(tb.Plan.Min, tb.Plan.Max, region, core.SynthOptions{
				Cell: 0.10, Workers: 1, Cache: cache,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sg.RefinedArgmaxCell(scene)
			if err != nil {
				t.Fatal(err)
			}
			if err := fullGrid.LogHeatmapInto(&h, scene); err != nil {
				t.Fatal(err)
			}
			want := restrictedArgmaxCell(&h, fullGrid.Spec(), sg.Spec())
			if got != want {
				t.Fatalf("client %d combo %v region %d: region argmax %d != restricted full argmax %d",
					ci, combo, checked%len(regions), got, want)
			}
			if u := cache.Usage(); u.Bytes > budget {
				t.Fatalf("cache size %d exceeds %d budget after scene %d", u.Bytes, budget, checked)
			}
			checked++
		}
	}
	u := cache.Usage()
	t.Logf("region argmax == restricted full argmax on all %d testbed scenes (cache: %d entries, %d/%d bytes, %d evictions, %d slices)",
		checked, u.Entries, u.Bytes, budget, u.Evictions, u.Slices)
	if checked != 205 {
		t.Fatalf("swept %d scenes, want 205", checked)
	}
}

// TestRegionSteadyStateAllocs is the gate's alloc clause: with warm
// LUTs and pooled scratch, a region fix through a prebuilt grid
// allocates at most 2 objects per op.
func TestRegionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the gate runs in the non-race pass")
	}
	tb := New()
	scenes, _, err := tb.synthScenes(SynthOptions{MaxClients: 2, Sites: []int{0, 2, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewSynthCacheBudget(32 << 20)
	region := core.Region{Min: geom.Pt(8, 3), Max: geom.Pt(20, 12)}
	sg, err := core.NewSynthGridRegion(tb.Plan.Min, tb.Plan.Max, region, core.SynthOptions{
		Cell: 0.10, Workers: 1, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Localize(scenes[0]); err != nil { // warm LUTs + pool
		t.Fatal(err)
	}
	allocs := allocsPerRun(20, func() {
		if _, err := sg.Localize(scenes[0]); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state region Localize: %.0f allocs/op", allocs)
	if allocs > 2 {
		t.Fatalf("region fix allocates %.0f/op steady-state, want ≤2", allocs)
	}
}

// TestRunRegionsMeetsTargets runs the regions experiment (capped) and
// enforces its headline claims: exact argmax on every query, a real
// hit rate at a comfortable budget, and a latency-lane p99 for
// interactive region fixes no worse than the batch backlog's p99 (the
// lane exists to jump that backlog; on an unloaded runner the margin
// is typically an order of magnitude).
//
// The latency claim takes the best of a few attempts, the same
// convention as the other timing gates: the priority p99 is the max
// of six samples on a shared, often single-core host, and the
// numeric-kernel sprint shrank the batch p99 it is compared against —
// one OS-scheduling hiccup in six samples can cross the bar without
// any real lane regression, but a lane that genuinely fails to jump
// the backlog fails every attempt.
func TestRunRegionsMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("instrumentation skews the latency distribution; the gate runs in the non-race pass")
	}
	tb := New()
	opt := DefaultRegionsOptions()
	opt.MaxClients = 3
	opt.Queries = 120
	opt.Budgets = []int64{1 << 20, 32 << 20}
	opt.BatchJobs = 24
	opt.PriorityJobs = 6

	const attempts = 3
	var lastErr string
	for a := 0; a < attempts; a++ {
		r, err := tb.RunRegions(opt)
		if err != nil {
			t.Fatal(err)
		}
		get := func(name string) float64 {
			for _, m := range r.Metrics {
				if m.Name == name {
					return m.Value
				}
			}
			t.Fatalf("metric %s missing", name)
			return 0
		}
		// Deterministic claims: fail immediately, retries cannot help.
		if pct := get("regions_argmax_match_pct"); pct != 100 {
			t.Fatalf("region argmax matches restricted full on %.0f%% of queries, want 100%%", pct)
		}
		if hit := get("regions_hit_pct_max_budget"); hit < 50 {
			t.Fatalf("hit rate %.1f%% at the largest budget, want ≥50%% under the skewed workload", hit)
		}
		prio, batch := get("regions_prio_p99_ms"), get("regions_batch_p99_ms")
		if prio <= batch {
			t.Logf("p99: priority %.1fms, batch %.1fms", prio, batch)
			return
		}
		lastErr = fmt.Sprintf("priority-lane region p99 %.1fms exceeds batch p99 %.1fms — the lane is not jumping the backlog", prio, batch)
		t.Logf("attempt %d/%d: %s", a+1, attempts, lastErr)
	}
	t.Error(lastErr)
}
