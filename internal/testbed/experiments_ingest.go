package testbed

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// IngestShape is one record geometry in the flood sweep.
type IngestShape struct {
	Antennas, Samples int
}

// IngestOptions sizes the ingest flood experiment: a synthetic AP
// flood is replayed through every server ingest path — the seed's
// per-record v1 loop, the pooled per-record path, v3 batch framing at
// several burst sizes, and the UDP datagram decoder — and each path's
// captures/sec/core is the median over Trials runs.
type IngestOptions struct {
	// Captures is the flood length per trial.
	Captures int
	// Trials is the number of timed runs per mode; the median is
	// reported (loopback sockets on a shared core are noisy).
	Trials int
	// Conns is the number of sequential connections per trial; each
	// replays the full flood, so one trial serves Conns x Captures
	// records against a long-lived backend.
	Conns int
	// Shapes are the record geometries swept.
	Shapes []IngestShape
	// BatchSizes are the v3 burst sizes swept.
	BatchSizes []int
	// Clients and APs shape the flood: client IDs cycle mod Clients,
	// and each client's captures alternate across APs so quorum
	// flushes fire continuously — the steady state of a live deploy.
	Clients, APs int
	// Quorum is the backend's distinct-AP flush threshold.
	Quorum int
	// AllocRuns is the sample count for the allocs/capture measurement.
	AllocRuns int
	// Seed drives the synthetic sample streams.
	Seed int64
}

// DefaultIngestOptions floods 4096 captures per trial across the
// paper's 8-antenna geometry plus a smaller and a larger record.
func DefaultIngestOptions() IngestOptions {
	return IngestOptions{
		Captures:   4096,
		Trials:     5,
		Conns:      4,
		Shapes:     []IngestShape{{4, 16}, {8, 16}, {8, 64}},
		BatchSizes: []int{8, 32, 128},
		Clients:    8,
		APs:        2,
		Quorum:     2,
		AllocRuns:  10,
		Seed:       41,
	}
}

// releaseDispatcher is the flood sink: it owns each flush and returns
// the pooled buffers immediately, so the measurement isolates the
// ingest path rather than localization.
type releaseDispatcher struct{}

func (releaseDispatcher) Dispatch(_ uint32, caps []server.Capture) {
	server.ReleaseAll(caps)
}

// seedIngestState replicates the seed backend's grouping allocation
// profile — a map[uint32][]Capture pending set, a distinct-AP map
// allocated per ingest, and a fresh copy-back slice on every
// non-flush ingest — so the baseline row prices the per-record path
// this PR replaced, not today's backend with per-record framing.
type seedIngestState struct {
	mu      sync.Mutex
	pending map[uint32][]server.Capture
}

func newSeedIngestState() *seedIngestState {
	return &seedIngestState{pending: make(map[uint32][]server.Capture)}
}

func (sp *seedIngestState) ingest(c *server.Capture, quorum int, window time.Duration) {
	sp.mu.Lock()
	list := append(sp.pending[c.ClientID], *c)
	newest := list[0].Timestamp
	for _, e := range list {
		if e.Timestamp.After(newest) {
			newest = e.Timestamp
		}
	}
	fresh := list[:0]
	for _, e := range list {
		if newest.Sub(e.Timestamp) <= window {
			fresh = append(fresh, e)
		}
	}
	aps := make(map[uint32]bool)
	for _, e := range fresh {
		aps[e.APID] = true
	}
	if len(aps) >= quorum {
		delete(sp.pending, c.ClientID)
		sp.mu.Unlock()
		return
	}
	sp.pending[c.ClientID] = append([]server.Capture(nil), fresh...)
	sp.mu.Unlock()
}

// ingestFlood synthesizes the capture flood: timestamps advance
// monotonically and each client is heard by opt.APs access points in
// turn, so a quorum of opt.Quorum flushes on schedule.
func ingestFlood(opt IngestOptions, shape IngestShape) []server.Capture {
	rng := rand.New(rand.NewSource(opt.Seed))
	caps := make([]server.Capture, opt.Captures)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := range caps {
		streams := make([][]complex128, shape.Antennas)
		for a := range streams {
			row := make([]complex128, shape.Samples)
			for s := range row {
				row[s] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
			streams[a] = row
		}
		caps[i] = server.Capture{
			APID:      uint32(1 + (i/opt.Clients)%opt.APs),
			ClientID:  uint32(i % opt.Clients),
			Seq:       uint32(i),
			Timestamp: base.Add(time.Duration(i) * 100 * time.Microsecond),
			Streams:   streams,
		}
	}
	return caps
}

// serializeRecords encodes the flood as back-to-back v1 records using
// the pooled append-path writer.
func serializeRecords(caps []server.Capture) []byte {
	var buf []byte
	for i := range caps {
		b, err := server.AppendCapture(buf, &caps[i])
		if err != nil {
			panic(err)
		}
		buf = b
	}
	return buf
}

// serializeBatches encodes the flood as v3 batch frames of n captures.
func serializeBatches(caps []server.Capture, n int) []byte {
	var buf []byte
	for i := 0; i < len(caps); i += n {
		end := i + n
		if end > len(caps) {
			end = len(caps)
		}
		b, err := server.AppendBatch(buf, caps[i:end])
		if err != nil {
			panic(err)
		}
		buf = b
	}
	return buf
}

// serializeDatagrams packs the flood into batch-frame datagrams, each
// holding as many captures as fit under the UDP payload ceiling (at
// most batch captures per datagram).
func serializeDatagrams(caps []server.Capture, batch int) [][]byte {
	var grams [][]byte
	i := 0
	for i < len(caps) {
		end := i
		for end < len(caps) && end-i < batch {
			if end > i && server.BatchFrameSize(caps[i:end+1]) > server.MaxDatagramBytes {
				break
			}
			end++
		}
		g, err := server.AppendBatch(nil, caps[i:end])
		if err != nil {
			panic(err)
		}
		grams = append(grams, g)
		i = end
	}
	return grams
}

// udpSocketFlood is the honest end-to-end UDP measurement: a real
// loopback PacketConn served by Backend.ServeUDP on its own goroutine
// while a sender goroutine floods datagrams from a second socket,
// flat out, with no pacing. Unlike the direct IngestDatagram mode it
// prices the kernel round-trip and admits packet loss: received is
// the backend's settled capture count (UDP().Captures delta), not the
// send count, and the caller reports the difference. The clock runs
// from the first send until the receiver quiesces.
func udpSocketFlood(grams [][]byte, conns int, quorum int, window time.Duration) (received uint64, elapsed time.Duration, err error) {
	be := server.NewBackendDispatcher(quorum, window, releaseDispatcher{})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		uc.SetReadBuffer(4 << 20)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = be.ServeUDP(ctx, pc)
	}()
	defer func() { cancel(); <-served }()

	tx, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		return 0, 0, err
	}
	defer tx.Close()
	start := time.Now()
	for c := 0; c < conns; c++ {
		for _, g := range grams {
			if _, err := tx.Write(g); err != nil {
				return 0, 0, err
			}
		}
	}
	// Quiesce: the receiver has caught up (or dropped the rest) once
	// the settled counter stops moving.
	last := be.UDP().Captures
	lastMove := time.Now()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		if n := be.UDP().Captures; n != last {
			last, lastMove = n, time.Now()
		} else if time.Since(lastMove) > 50*time.Millisecond {
			break
		}
	}
	return last, lastMove.Sub(start), nil
}

// floodTCP replays data over a loopback TCP connection and times
// serve, which must consume the stream to EOF. Both socket buffers
// are raised to the host ceiling so a 4096-capture flood sits wholly
// in the kernel by the time serving is underway: the timed section
// then prices the server's ingest stack (syscalls, decode, grouping),
// not the producer goroutine sharing the core.
func floodTCP(data []byte, serve func(conn net.Conn) error) (time.Duration, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	written := make(chan struct{})
	go func() {
		defer close(written)
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(4 << 20)
		}
		c.Write(data)
		c.Close()
	}()
	conn, err := l.Accept()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 20)
	}
	// Let the producer hand the whole flood to the kernel before the
	// clock starts (the floods above fit the send+receive buffers), and
	// give the loopback transfer a moment to drain across. The timeout
	// keeps an oversized flood from deadlocking against a parked reader.
	select {
	case <-written:
		time.Sleep(2 * time.Millisecond)
	case <-time.After(100 * time.Millisecond):
	}
	start := time.Now()
	err = serve(conn)
	return time.Since(start), err
}

// floodTCPTrial replays the flood over conns sequential connections
// and sums the serve times.
func floodTCPTrial(data []byte, conns int, serve func(conn net.Conn) error) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < conns; i++ {
		el, err := floodTCP(data, serve)
		if err != nil {
			return 0, err
		}
		total += el
	}
	return total, nil
}

type ingestMode struct {
	name  string
	trial func() (time.Duration, error)
	times []time.Duration
}

// runModes measures every mode's captures/sec as the median over
// trials. Trials are interleaved round-robin across the modes — with
// one discarded warm-up sweep first — so slow periods on a shared
// host spread across all modes instead of biasing whichever block
// they land on, keeping the reported ratios stable.
func runModes(modes []*ingestMode, trials int) error {
	for t := 0; t <= trials; t++ {
		for _, m := range modes {
			el, err := m.trial()
			if err != nil {
				return err
			}
			if t > 0 { // sweep 0 is the warm-up
				m.times = append(m.times, el)
			}
		}
	}
	return nil
}

func (m *ingestMode) cps(captures int) float64 {
	rates := make([]float64, len(m.times))
	for i, el := range m.times {
		rates[i] = float64(captures) / el.Seconds()
	}
	sort.Float64s(rates)
	return rates[len(rates)/2]
}

// RunIngest floods every server ingest path and reports captures/sec
// per core, the batch-vs-seed speedup, and steady-state allocations
// per capture. The baseline row replays the seed's per-record v1
// path verbatim: one framed read per capture, field-by-field decode
// with three fresh allocations per record, and map-allocating
// grouping. Batch rows stream v3 frames through the pooled decoder
// into the backend.
func (tb *Testbed) RunIngest(opt IngestOptions) (*Report, error) {
	r := &Report{ID: "ingest", Title: "batched zero-copy ingest vs the seed per-record path"}
	window := time.Hour

	shapeTag := func(sh IngestShape) string { return fmt.Sprintf("%dx%d", sh.Antennas, sh.Samples) }

	var speedup8x16 float64
	for _, sh := range opt.Shapes {
		caps := ingestFlood(opt, sh)
		recordStream := serializeRecords(caps)

		// Seed baseline: allocating per-record reads + map grouping.
		modes := []*ingestMode{{name: "seed v1/record", trial: func() (time.Duration, error) {
			sp := newSeedIngestState()
			return floodTCPTrial(recordStream, opt.Conns, func(conn net.Conn) error {
				for {
					c, err := server.ReadCapture(conn)
					if err != nil {
						return nil
					}
					sp.ingest(c, opt.Quorum, window)
				}
			})
		}}}

		// Pooled per-record path: same wire format, pooled decode and
		// the current backend.
		modes = append(modes, &ingestMode{name: "pooled v1/record", trial: func() (time.Duration, error) {
			be := server.NewBackendDispatcher(opt.Quorum, window, releaseDispatcher{})
			return floodTCPTrial(recordStream, opt.Conns, func(conn net.Conn) error { return be.ServeConn(conn) })
		}})

		for _, bs := range opt.BatchSizes {
			batchStream := serializeBatches(caps, bs)
			modes = append(modes, &ingestMode{name: fmt.Sprintf("batch %d", bs), trial: func() (time.Duration, error) {
				be := server.NewBackendDispatcher(opt.Quorum, window, releaseDispatcher{})
				return floodTCPTrial(batchStream, opt.Conns, func(conn net.Conn) error { return be.ServeConn(conn) })
			}})
		}

		// UDP datagram path: the decoder+backend cost of ServeUDP,
		// driven directly so a flooding sender on a shared core cannot
		// starve the reader out of the measurement.
		grams := serializeDatagrams(caps, 32)
		modes = append(modes, &ingestMode{name: "udp batch 32", trial: func() (time.Duration, error) {
			be := server.NewBackendDispatcher(opt.Quorum, window, releaseDispatcher{})
			start := time.Now()
			for c := 0; c < opt.Conns; c++ {
				for _, g := range grams {
					if err := be.IngestDatagram(g); err != nil {
						return 0, err
					}
				}
			}
			return time.Since(start), nil
		}})

		if err := runModes(modes, opt.Trials); err != nil {
			return nil, err
		}

		perTrial := opt.Conns * len(caps)
		seedCPS := modes[0].cps(perTrial)
		r.AddMetric("ingest_cps_seed_"+shapeTag(sh), seedCPS, "caps/s")
		r.AddMetric("ingest_cps_pooled_"+shapeTag(sh), modes[1].cps(perTrial), "caps/s")
		for i, bs := range opt.BatchSizes {
			cps := modes[2+i].cps(perTrial)
			r.AddMetric(fmt.Sprintf("ingest_cps_batch%d_%s", bs, shapeTag(sh)), cps, "caps/s")
			if sh == (IngestShape{8, 16}) && bs == 32 {
				speedup8x16 = cps / seedCPS
			}
		}
		r.AddMetric("ingest_cps_udp32_"+shapeTag(sh), modes[len(modes)-1].cps(perTrial), "caps/s")

		r.Addf("%d ant x %d samples (%d captures x %d conns, median of %d interleaved trials):",
			sh.Antennas, sh.Samples, len(caps), opt.Conns, opt.Trials)
		for _, m := range modes {
			cps := m.cps(perTrial)
			r.Addf("  %-18s %9.0f caps/s/core   %5.2fx", m.name, cps, cps/seedCPS)
		}
	}

	// Socket-level UDP flood at the paper geometry: ServeUDP on a real
	// loopback socket against an unpaced sender. The rate is computed
	// from captures the backend actually settled, and drops are
	// reported, not hidden — fire-and-forget ingest that loses packets
	// should say so. The sender and server need separate cores to mean
	// anything: on a single-proc runner the flood measures the Go
	// scheduler's context switches, so it is skipped with a note.
	if procs := runtime.GOMAXPROCS(0); procs < 2 {
		r.Addf("udp socket flood: skipped (GOMAXPROCS=%d; sender and ServeUDP would share one core and the rate would price the scheduler, not the ingest path)", procs)
	} else {
		sockShape := IngestShape{8, 16}
		sockCaps := ingestFlood(opt, sockShape)
		grams := serializeDatagrams(sockCaps, 32)
		sent := uint64(opt.Conns * len(sockCaps))
		var rates []float64
		var worstLoss float64
		for t := 0; t <= opt.Trials; t++ {
			got, el, err := udpSocketFlood(grams, opt.Conns, opt.Quorum, window)
			if err != nil {
				return nil, err
			}
			if t == 0 || el <= 0 { // sweep 0 is the warm-up
				continue
			}
			rates = append(rates, float64(got)/el.Seconds())
			if loss := 100 * float64(sent-got) / float64(sent); loss > worstLoss {
				worstLoss = loss
			}
		}
		sort.Float64s(rates)
		sockCPS := rates[len(rates)/2]
		r.AddMetric("ingest_cps_udpsock_8x16", sockCPS, "caps/s")
		r.AddMetric("ingest_udpsock_worst_loss_pct", worstLoss, "%")
		r.Addf("udp socket flood at 8x16 (batch 32, %d captures x %d bursts, unpaced loopback sender): %9.0f caps/s settled, worst-trial loss %.2f%%",
			len(sockCaps), opt.Conns, sockCPS, worstLoss)
	}

	// Steady-state allocations per capture, in-memory so the socket
	// layer cannot hide or add heap traffic. The batch path reuses one
	// bufio reader across runs, as one long-lived AP connection would.
	allocShape := IngestShape{8, 16}
	allocCaps := ingestFlood(opt, allocShape)
	batchStream := serializeBatches(allocCaps, 32)
	be := server.NewBackendDispatcher(opt.Quorum, window, releaseDispatcher{})
	rd := bytes.NewReader(batchStream)
	br := bufio.NewReaderSize(rd, 256<<10)
	batchAllocs := allocsPerRun(opt.AllocRuns, func() {
		rd.Reset(batchStream)
		br.Reset(rd)
		if err := be.ServeConn(br); err != nil {
			panic(err)
		}
	}) / float64(len(allocCaps))

	recordStream := serializeRecords(allocCaps)
	seedAllocs := allocsPerRun(opt.AllocRuns, func() {
		sp := newSeedIngestState()
		rd := bytes.NewReader(recordStream)
		for {
			c, err := server.ReadCapture(rd)
			if err != nil {
				break
			}
			sp.ingest(c, opt.Quorum, window)
		}
	}) / float64(len(allocCaps))

	r.AddMetric("ingest_speedup_8x16", speedup8x16, "x")
	r.AddMetric("ingest_allocs_batch32_8x16", batchAllocs, "allocs/capture")
	r.AddMetric("ingest_allocs_seed_8x16", seedAllocs, "allocs/capture")
	r.Addf("allocs/capture at 8x16 steady state: batch32 %.2f, seed per-record %.2f", batchAllocs, seedAllocs)
	r.Addf("batch32 vs seed per-record at 8x16: %.2fx captures/sec/core", speedup8x16)
	return r, nil
}
