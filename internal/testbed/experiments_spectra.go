package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/stats"
	"repro/internal/wifi"
)

// spectrumOptions returns the per-frame MUSIC settings matching the
// core pipeline defaults.
func (tb *Testbed) spectrumOptions() music.Options {
	return music.Options{
		Wavelength:      tb.Wavelength,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    100,
		ForwardBackward: true,
	}
}

// describePeaks renders a peak list compactly.
func describePeaks(s *music.Spectrum, minRel float64) string {
	out := ""
	for i, p := range s.Peaks(minRel) {
		if i > 0 {
			out += "  "
		}
		out += fmtDeg(p.Theta, p.Power)
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

func fmtDeg(theta, power float64) string {
	return fmt.Sprintf("%.0f°(%.2f)", geom.Deg(theta), power)
}

// RunFig7 regenerates Figure 7: the effect of the number of spatial
// smoothing groups NG on the AoA spectrum of a line-of-sight client.
func (tb *Testbed) RunFig7(seed int64) (*Report, error) {
	site := tb.Sites[0]
	// A line-of-sight client far enough across the floor that wall
	// reflections and clutter carry comparable energy — the regime
	// where Figure 7's false peaks appear without smoothing.
	client := geom.Pt(site.Pos.X+11, site.Pos.Y+8)
	rng := rand.New(rand.NewSource(seed))
	capOpt := DefaultCaptureOptions()
	capOpt.Frames = 1
	frames := tb.CaptureClient(client, site, capOpt, rng)
	arr := tb.NewArray(site, capOpt)
	truth := site.Pos.Bearing(client)

	r := &Report{ID: "fig7", Title: "spatial smoothing sweep (LoS client)"}
	r.Addf("true bearing %.0f°", geom.Deg(truth))
	for ng := 1; ng <= 4; ng++ {
		opt := tb.spectrumOptions()
		opt.SmoothingGroups = ng
		opt.ForwardBackward = false // isolate the NG effect, like the figure
		s, err := music.ComputeSpectrum(arr, frames[0].Streams[:arr.N], opt)
		if err != nil {
			return nil, err
		}
		nPeaks := len(s.Peaks(0.08))
		errDeg := peakErrorDeg(s, truth)
		r.Addf("NG=%d: %2d peaks, direct-path peak error %4.1f°, peaks: %s",
			ng, nPeaks, errDeg, describePeaks(s, 0.08))
	}
	return r, nil
}

// peakErrorDeg returns the angular distance from the bearing truth to
// the nearest peak (accepting the array mirror as equivalent).
func peakErrorDeg(s *music.Spectrum, truth float64) float64 {
	best := math.Inf(1)
	for _, p := range s.Peaks(0.05) {
		if d := geom.Deg(geom.AngleDiff(p.Theta, truth)); d < best {
			best = d
		}
	}
	return best
}

// RunTable1 regenerates Table 1: the peak-stability microbenchmark. At
// positions spread over the floor, spectra are computed at p and at a
// point 5 cm away; the direct-path peak and the reflection peaks are
// classified as changed/unchanged with a 5° criterion.
func (tb *Testbed) RunTable1(positions int, seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	capOpt := DefaultCaptureOptions()
	capOpt.Frames = 1
	capOpt.MoveSigma = 0

	counts := map[[2]bool]int{}
	total := 0
	for i := 0; i < positions; i++ {
		// Random positions drawn around the client population (the
		// open office areas where clients actually sit), as in the
		// paper's "100 randomly chosen locations in our testbed". Only
		// off-axis geometries participate: within ~20° of the array
		// axis a linear array has no usable resolution, the geometry
		// weighting of §2.3.3 discards those spectra before the
		// suppression step ever sees them.
		var p geom.Point
		var site Site
		for {
			base := tb.Clients[rng.Intn(len(tb.Clients))]
			p = base.Add(geom.Vec{X: rng.NormFloat64() * 0.8, Y: rng.NormFloat64() * 0.8})
			if !tb.Plan.Contains(p) {
				p = base
			}
			site = tb.Sites[rng.Intn(len(tb.Sites))]
			offAxis := math.Abs(math.Remainder(site.Pos.Bearing(p)-site.Orient, math.Pi))
			if offAxis > geom.Rad(20) {
				break
			}
		}
		ang := rng.Float64() * 2 * math.Pi
		q := p.Add(geom.FromAngle(ang).Scale(0.05))

		arr := tb.NewArray(site, capOpt)
		f1 := tb.CaptureClient(p, site, capOpt, rng)
		f2 := tb.CaptureClient(q, site, capOpt, rng)
		s1, err := music.ComputeSpectrum(arr, f1[0].Streams[:arr.N], tb.spectrumOptions())
		if err != nil {
			return nil, err
		}
		s2, err := music.ComputeSpectrum(arr, f2[0].Streams[:arr.N], tb.spectrumOptions())
		if err != nil {
			return nil, err
		}
		truth := site.Pos.Bearing(p)
		directSame, reflSame := core.PeakStability(s1, s2, truth, 5)
		counts[[2]bool{directSame, reflSame}]++
		total++
	}

	r := &Report{ID: "table1", Title: "peak stability under 5 cm movement"}
	rows := []struct {
		key  [2]bool
		name string
	}{
		{[2]bool{true, false}, "direct same; reflections changed"},
		{[2]bool{true, true}, "direct same; reflections same"},
		{[2]bool{false, false}, "direct changed; reflections changed"},
		{[2]bool{false, true}, "direct changed; reflections same"},
	}
	for _, row := range rows {
		r.Addf("%-38s %3.0f%%", row.name, 100*float64(counts[row.key])/float64(total))
	}
	return r, nil
}

// RunFig17 regenerates Figure 17: AoA spectra for a client in line with
// an AP as concrete pillars are placed, one then two, on the direct
// path. The paper's observation: even behind two pillars the direct
// path stays among the top three peaks.
func (tb *Testbed) RunFig17(seed int64) (*Report, error) {
	site := tb.Sites[1] // bottom-centre, looking up at the open floor
	client := geom.Pt(site.Pos.X+2.5, site.Pos.Y+9)
	truth := site.Pos.Bearing(client)
	dir := geom.FromAngle(truth)

	r := &Report{ID: "fig17", Title: "AoA spectra with the direct path blocked by pillars"}
	r.Addf("true bearing %.0f°", geom.Deg(truth))
	for blocks := 0; blocks <= 2; blocks++ {
		// Copy the floorplan and add pillars straddling the LoS path.
		plan := &geom.Floorplan{Min: tb.Plan.Min, Max: tb.Plan.Max}
		plan.Walls = append(plan.Walls, tb.Plan.Walls...)
		for b := 0; b < blocks; b++ {
			at := site.Pos.Add(dir.Scale(3 + 2.5*float64(b)))
			plan.AddRect(geom.Pt(at.X-0.4, at.Y-0.4), geom.Pt(at.X+0.4, at.Y+0.4), fig17PillarMat)
		}
		model := &channel.Model{
			Plan:           plan,
			Wavelength:     tb.Wavelength,
			MaxReflections: tb.Model.MaxReflections,
			Scatterers:     tb.Model.Scatterers,
		}
		rng := rand.New(rand.NewSource(seed))
		capOpt := DefaultCaptureOptions()
		arr := tb.NewArray(site, capOpt)
		rec := model.Receive(client, arr, wifi.Preamble40(), channel.RxConfig{
			TxPowerDBm:    capOpt.TxPowerDBm,
			NoiseFloorDBm: capOpt.NoiseFloorDBm,
			Rng:           rng,
		})
		s, err := music.ComputeSpectrum(arr, rec.Samples[:arr.N], tb.spectrumOptions())
		if err != nil {
			return nil, err
		}
		rank := directPeakRank(s, truth)
		r.Addf("%d pillar(s): direct-path peak rank %d of %d, peaks: %s",
			blocks, rank, len(s.Peaks(0.05)), describePeaks(s, 0.05))
	}
	return r, nil
}

// fig17PillarMat is the structural concrete of the blocking-pillar
// experiment: ~3 dB per surface, so one pillar costs the direct path
// about 6 dB — enough to demote it below reflections without erasing
// it, which is the regime Figure 17 explores.
var fig17PillarMat = geom.Material{Name: "pillar-exp", Reflectivity: 0.25, TransmissionLossDB: 2}

// directPeakRank returns the 1-based power rank of the peak nearest the
// true bearing, or 0 if no peak lies within 10°. A linear array always
// produces mirror twins; each mirror pair counts as one ranked peak,
// and the true bearing's mirror is accepted as a match.
func directPeakRank(s *music.Spectrum, truth float64) int {
	peaks := s.Peaks(0.05)
	rank := 0
	var seen []float64
	for _, p := range peaks {
		mirrored := false
		for _, th := range seen {
			if geom.AngleDiff(p.Theta, 2*math.Pi-th) <= geom.Rad(6) {
				mirrored = true
				break
			}
		}
		if mirrored {
			continue
		}
		seen = append(seen, p.Theta)
		rank++
		if geom.AngleDiff(p.Theta, truth) <= geom.Rad(10) ||
			geom.AngleDiff(p.Theta, 2*math.Pi-truth) <= geom.Rad(10) {
			return rank
		}
	}
	return 0
}

// RunFig19 regenerates Figure 19: AoA spectrum stability versus the
// number of preamble samples N. For each N, 30 packets from the same
// client are processed and the spread of the recovered direct-path
// bearing is reported.
func (tb *Testbed) RunFig19(seed int64) (*Report, error) {
	site := tb.Sites[0]
	client := geom.Pt(site.Pos.X+6, site.Pos.Y+5)
	truth := site.Pos.Bearing(client)
	capOpt := DefaultCaptureOptions()
	capOpt.Frames = 1
	capOpt.MoveSigma = 0
	// Back the transmit power off so per-sample noise matters and the
	// benefit of averaging more samples is visible, as in the figure.
	capOpt.TxPowerDBm = -18

	r := &Report{ID: "fig19", Title: "spectrum stability vs number of samples (30 packets each)"}
	for _, n := range []int{1, 5, 10, 100} {
		rng := rand.New(rand.NewSource(seed))
		var errs []float64
		for pkt := 0; pkt < 30; pkt++ {
			frames := tb.CaptureClient(client, site, capOpt, rng)
			arr := tb.NewArray(site, capOpt)
			opt := tb.spectrumOptions()
			opt.MaxSamples = n
			s, err := music.ComputeSpectrum(arr, frames[0].Streams[:arr.N], opt)
			if err != nil {
				return nil, err
			}
			errs = append(errs, peakErrorDeg(s, truth))
		}
		sum := stats.Summarize(errs)
		r.Addf("N=%3d: direct-peak error median %4.1f° p95 %5.1f°", n, sum.Median, sum.P95)
	}
	return r, nil
}

// RunFig20 regenerates Figure 20: AoA spectra as SNR falls. TX power is
// stepped down; spectrum sharpness (peak-to-median ratio) and the
// direct-path peak error are reported per realized SNR.
func (tb *Testbed) RunFig20(seed int64) (*Report, error) {
	site := tb.Sites[0]
	client := geom.Pt(site.Pos.X+6, site.Pos.Y+5)
	truth := site.Pos.Bearing(client)

	r := &Report{ID: "fig20", Title: "AoA spectra vs SNR"}
	r.Addf("%8s %10s %12s %10s", "TX dBm", "SNR dB", "side peaks", "peak err")
	for _, tx := range []float64{15, 0, -14, -22, -28, -34} {
		rng := rand.New(rand.NewSource(seed))
		capOpt := DefaultCaptureOptions()
		capOpt.TxPowerDBm = tx
		capOpt.Frames = 1
		arr := tb.NewArray(site, capOpt)
		rec := tb.Model.Receive(client, arr, wifi.Preamble40(), channel.RxConfig{
			TxPowerDBm:    tx,
			NoiseFloorDBm: capOpt.NoiseFloorDBm,
			Rng:           rng,
		})
		s, err := music.ComputeSpectrum(arr, rec.Samples[:arr.N], tb.spectrumOptions())
		if err != nil {
			return nil, err
		}
		r.Addf("%8.0f %10.1f %12d %9.1f°", tx, rec.SNRdB, sidePeaks(s), peakErrorDeg(s, truth))
	}
	return r, nil
}

// sidePeaks counts local maxima at or above 20%% of the spectrum peak,
// beyond the main lobe and its mirror — "very large side lobes appear"
// as the SNR falls (Figure 20).
func sidePeaks(s *music.Spectrum) int {
	peaks := s.Peaks(0.2)
	if len(peaks) <= 2 {
		return 0
	}
	return len(peaks) - 2
}

// RunDetection regenerates the §4.3.4 detection claim: matched-filter
// detection over all ten known short training symbols versus SNR, down
// to −10 dB and beyond, with a pure-noise false-alarm control.
func (tb *Testbed) RunDetection(trials int, seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	preamble := wifi.Preamble40()
	sts := preamble[:320] // the ten short training symbols at 40 Msps
	const mfThreshold = 20
	r := &Report{ID: "detect", Title: "packet detection rate vs SNR (matched filter over 10 short symbols)"}
	r.Addf("%8s %12s %12s", "SNR dB", "detect rate", "false rate")
	for _, snr := range []float64{10, 5, 0, -5, -10, -15} {
		amp := math.Sqrt(dsp.DBToLinear(snr))
		detected, falsePos := 0, 0
		for i := 0; i < trials; i++ {
			x := make([]complex128, 2600)
			for j := range x {
				x[j] = complex(rng.NormFloat64(), rng.NormFloat64()) * math.Sqrt2 / 2
			}
			for j, v := range preamble {
				x[1000+j] += v * complex(amp, 0)
			}
			if idx, ok := dsp.MatchedFilterDetect(x, sts, mfThreshold); ok {
				if idx > 1000-160 && idx < 1000+320 {
					detected++
				} else {
					falsePos++
				}
			}
			// Pure-noise control.
			noise := make([]complex128, 2600)
			for j := range noise {
				noise[j] = complex(rng.NormFloat64(), rng.NormFloat64()) * math.Sqrt2 / 2
			}
			if _, ok := dsp.MatchedFilterDetect(noise, sts, mfThreshold); ok {
				falsePos++
			}
		}
		r.Addf("%8.0f %11.0f%% %11.1f%%", snr,
			100*float64(detected)/float64(trials),
			100*float64(falsePos)/float64(2*trials))
	}
	return r, nil
}
