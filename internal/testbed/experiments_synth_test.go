package testbed

import (
	"testing"

	"repro/internal/core"
)

// TestRunSynthMeetsTargets runs the synthesis experiment (capped) and
// enforces the acceptance criteria end to end on real testbed scenes:
// the coarse-to-fine argmax must equal the full-resolution argmax on
// every scene, the staged estimator must stay at the seed estimator's
// accuracy, and the steady-state path must allocate ≤2 objects per
// fix.
func TestRunSynthMeetsTargets(t *testing.T) {
	if raceEnabled {
		t.Skip("pool drops and instrumentation skew allocs/timings under the race detector; the gate runs in the non-race pass")
	}
	tb := New()
	opt := DefaultSynthOptions()
	opt.MaxClients = 4
	opt.Trials = 2
	opt.Cells = []float64{0.50, 0.10}
	r, err := tb.RunSynth(opt)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, m := range r.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s missing", name)
		return 0
	}
	if pct := get("synth_argmax_match_pct"); pct != 100 {
		t.Fatalf("refined argmax matches full on %.0f%% of scenes, want 100%%", pct)
	}
	if a := get("synth_localize_allocs"); a > 2 {
		t.Fatalf("staged Localize allocs %.0f/op, want ≤2", a)
	}
	// Speedups are hard-gated at ≥5x in core (TestSynthGridSpeedupGate,
	// single thread, best-of); here just require the experiment to
	// report a real win on the full pipeline scenes too.
	if sp := get("synth_speedup_1w"); sp < 3 {
		t.Fatalf("single-worker surface speedup %.1fx on testbed scenes, want ≥3x", sp)
	}
	// The staged estimator must not lose accuracy against the seed
	// estimator on the same scenes (identical is typical; allow slack
	// for hill climbs that settle on the far side of the same peak).
	grid, seed := get("synth_median_err_grid_cm"), get("synth_median_err_seed_cm")
	if grid > seed+25 {
		t.Fatalf("staged estimator median error %.0f cm vs seed %.0f cm", grid, seed)
	}
}

// TestSynthRefinedArgmaxExactOnTestbed is the tentpole's exactness
// sweep: on every testbed client scene (all 41 positions, all six APs
// contributing, plus every leading 3-AP combination), the
// coarse-to-fine screen must return exactly the full-resolution
// argmax cell at the paper's 10 cm pitch.
func TestSynthRefinedArgmaxExactOnTestbed(t *testing.T) {
	tb := New()
	aOpt := DefaultAccuracyOptions()
	specs, _, err := tb.spectraForAll(aOpt)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{Cell: 0.10, Cache: core.NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	combos := [][]int{{0, 1, 2, 3, 4, 5}}
	combos = append(combos, Combinations(len(tb.Sites), 3)[:4]...)
	checked := 0
	for ci := range specs {
		for _, combo := range combos {
			scene := make([]core.APSpectrum, len(combo))
			for i, si := range combo {
				scene[i] = core.APSpectrum{Pos: tb.Sites[si].Pos, Spectrum: specs[ci][si]}
			}
			full, err := sg.FullArgmaxCell(scene)
			if err != nil {
				t.Fatal(err)
			}
			refined, err := sg.RefinedArgmaxCell(scene)
			if err != nil {
				t.Fatal(err)
			}
			if full != refined {
				t.Fatalf("client %d combo %v: refined argmax %d != full argmax %d", ci, combo, refined, full)
			}
			checked++
		}
	}
	t.Logf("refined == full argmax on all %d testbed scenes", checked)
}
