package channel

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/geom"
)

// Vertical reception support for the paper's §4.3.1 future-work
// extension: "extend the ArrayTrack system to three dimensions by using
// a vertically-oriented antenna array in conjunction with the existing
// horizontally-oriented array. This will allow the system to estimate
// elevation directly."
//
// The ray tracer stays two-dimensional (walls are vertical planes, so a
// path's plan-view geometry is independent of height); each traced path
// acquires an elevation angle from the transmitter/receiver height
// difference and its plan-view length, and a vertical uniform linear
// array observes phase progression in sin(elevation).

// PathElevation returns the elevation angle (radians, positive looking
// up from the receiver) of a path with plan-view length planLen between
// endpoints at the given heights.
func PathElevation(planLen, txHeight, rxHeight float64) float64 {
	return math.Atan2(txHeight-rxHeight, planLen)
}

// VerticalSteering returns the response of an n-element vertical ULA
// with the given spacing to a plane wave from elevation phi: element k
// (numbered bottom-up) leads element 0 by 2π·k·spacing·sin(φ)/λ.
func VerticalSteering(n int, spacing, phi, lambda float64) []complex128 {
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*spacing*math.Sin(phi)/lambda))
	}
	return out
}

// ReceiveVertical simulates reception of sig at an n-element vertical
// ULA mounted at rx (lowest element at rxHeight, spacing metres apart)
// from a client at tx transmitting at txHeight. Paths are traced in
// plan view; every path's gain keeps its 3-D length phase and its
// elevation drives the vertical steering.
func (m *Model) ReceiveVertical(tx, rx geom.Point, txHeight, rxHeight float64, n int, spacing float64, sig []complex128, cfg RxConfig) *Reception {
	paths := m.Paths(tx, rx, 0)
	ns := len(sig)
	txAmp := math.Pow(10, cfg.TxPowerDBm/20) * math.Pow(10, -cfg.PolarizationLossDB/20)

	samples := make([][]complex128, n)
	for k := range samples {
		samples[k] = make([]complex128, ns)
	}

	dh := txHeight - rxHeight
	for pi := range paths {
		p := &paths[pi]
		phi := PathElevation(p.Length, txHeight, rxHeight)
		l3 := math.Sqrt(p.Length*p.Length + dh*dh)
		// Re-phase the gain for the 3-D length.
		g := cmplx.Rect(cmplx.Abs(p.Gain)*txAmp, -2*math.Pi*l3/m.Wavelength)
		p.Length = l3
		steer := VerticalSteering(n, spacing, phi, m.Wavelength)
		for k := 0; k < n; k++ {
			gk := g * steer[k]
			dst := samples[k]
			for i := 0; i < ns; i++ {
				dst[i] += gk * sig[i]
			}
		}
	}

	var sigPower float64
	for k := 0; k < n; k++ {
		for _, v := range samples[k] {
			sigPower += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	sigPower /= float64(n * ns)

	noisePower := math.Pow(10, cfg.NoiseFloorDBm/10)
	if cfg.Rng != nil && noisePower > 0 {
		addNoise(samples, noisePower, cfg.Rng)
	}
	snr := math.Inf(1)
	if noisePower > 0 {
		snr = 10 * math.Log10(sigPower/noisePower)
	}
	return &Reception{Samples: samples, Paths: paths, SNRdB: snr}
}

func addNoise(samples [][]complex128, noisePower float64, rng *rand.Rand) {
	sd := math.Sqrt(noisePower / 2)
	for k := range samples {
		for i := range samples[k] {
			samples[k][i] += complex(rng.NormFloat64()*sd, rng.NormFloat64()*sd)
		}
	}
}
