// Package channel simulates indoor 2.4 GHz multipath propagation
// between a client and an AP antenna array, replacing the paper's
// physical office testbed.
//
// The model is an image-method ray tracer over a floorplan: the direct
// path, first- and second-order specular reflections off walls, and a
// set of diffuse scatterers (furniture, cubicle clutter). Every path
// carries a complex gain — free-space loss, reflection coefficients,
// through-wall attenuation, and the propagation phase 2πℓ/λ — and an
// angle of arrival at the array. Paths are phase-coherent, which is
// precisely the condition that breaks plain MUSIC and motivates
// ArrayTrack's spatial smoothing (§2.3.2), and the AoAs are
// geometry-consistent, which is what the multipath suppression step
// (§2.4) exploits when the client moves a few centimetres.
package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"repro/internal/array"
	"repro/internal/geom"
)

// Path is one propagation path from client to AP.
type Path struct {
	// AoA is the arrival bearing at the AP array (radians, global
	// frame): the bearing from the array to the last interaction point
	// (or to the client, for the direct path).
	AoA float64
	// Length is the total path length in metres.
	Length float64
	// Gain is the complex baseband amplitude gain of the path,
	// including propagation phase.
	Gain complex128
	// Bounces is the number of specular reflections (0 = direct,
	// -1 = diffuse scatterer path).
	Bounces int
	// Direct marks the straight-line client→AP path.
	Direct bool
}

// PowerDB returns the path gain in dB (20·log10|gain|).
func (p Path) PowerDB() float64 {
	a := cmplx.Abs(p.Gain)
	if a <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(a)
}

// Scatterer is a point diffuse scatterer with a scattering coefficient
// in (0, 1]; it re-radiates a fraction of the incident field toward the
// AP with a random but position-dependent phase.
type Scatterer struct {
	Pos   geom.Point
	Coeff float64
}

// Model holds everything needed to trace paths on a floorplan.
type Model struct {
	// Plan is the floorplan; nil means free space.
	Plan *geom.Floorplan
	// Wavelength is the carrier wavelength in metres.
	Wavelength float64
	// MaxReflections bounds the specular reflection order (0–2).
	MaxReflections int
	// Scatterers lists diffuse scatterers.
	Scatterers []Scatterer
	// WallRoughness in [0,1] is the fraction of each specular
	// reflection's energy diverted into "rough" sub-paths that bounce
	// off fixed points displaced along the wall from the specular
	// point. The sub-paths arrive within a few degrees of the specular
	// bearing — unresolvable by an eight-element array — so each
	// reflection lobe becomes a coherent composite whose apparent peak
	// shifts when the transmitter moves a few centimetres. That is the
	// empirical behaviour behind the paper's Table 1 (reflection peaks
	// change under small movement, the direct-path peak does not).
	WallRoughness float64
	// MinPathGainDB drops paths weaker than this below the direct
	// free-space gain at 1 m, keeping path lists small. Default −90.
	MinPathGainDB float64
}

// roughOffsets are the along-wall displacements (metres) of the rough
// sub-scatter points relative to the specular reflection point. The
// spread of a couple of metres gives the sub-paths meaningfully
// different departure angles at the client, so a few centimetres of
// client movement rotates their relative phases by an appreciable
// fraction of a wavelength and the composite lobe genuinely moves.
var roughOffsets = []float64{-2.1, -0.65, 0.5, 1.7}

// friisAmplitude is the free-space amplitude gain λ/(4πd).
func (m *Model) friisAmplitude(d float64) float64 {
	if d < 0.1 {
		d = 0.1 // clamp inside the near field
	}
	return m.Wavelength / (4 * math.Pi * d)
}

func (m *Model) minGain() float64 {
	cut := m.MinPathGainDB
	if cut == 0 {
		cut = -90
	}
	return m.friisAmplitude(1) * math.Pow(10, cut/20)
}

// Paths enumerates all propagation paths from tx (client) to rx (AP
// reference position), sorted by descending gain magnitude. heightDiff
// is the AP−client antenna height difference in metres; it stretches
// every path length to its 3-D value (Appendix A's cos φ effect) while
// leaving the azimuthal AoA unchanged.
func (m *Model) Paths(tx, rx geom.Point, heightDiff float64) []Path {
	var out []Path
	min := m.minGain()

	addPath := func(p Path) {
		if cmplx.Abs(p.Gain) >= min {
			out = append(out, p)
		}
	}

	stretch := func(l float64) float64 {
		return math.Sqrt(l*l + heightDiff*heightDiff)
	}

	// Direct path.
	{
		l := stretch(tx.Dist(rx))
		amp := m.friisAmplitude(l)
		if m.Plan != nil {
			amp *= math.Pow(10, -m.Plan.PathLossDB(tx, rx, nil)/20)
		}
		addPath(Path{
			AoA:    rx.Bearing(tx),
			Length: l,
			Gain:   cmplx.Rect(amp, -2*math.Pi*l/m.Wavelength),
			Direct: true,
		})
	}

	if m.Plan != nil && m.MaxReflections >= 1 {
		for i, w := range m.Plan.Walls {
			for _, p := range m.firstOrder(tx, rx, i, w) {
				p.Length = stretch(p.Length)
				p.Gain = cmplx.Rect(cmplx.Abs(p.Gain), -2*math.Pi*p.Length/m.Wavelength)
				addPath(p)
			}
			if m.MaxReflections >= 2 {
				for j := range m.Plan.Walls {
					if j == i {
						continue
					}
					p2, ok := m.secondOrder(tx, rx, i, j)
					if ok {
						p2.Length = stretch(p2.Length)
						p2.Gain = cmplx.Rect(cmplx.Abs(p2.Gain), -2*math.Pi*p2.Length/m.Wavelength)
						addPath(p2)
					}
				}
			}
		}
	}

	for _, s := range m.Scatterers {
		// A scatterer is an extended object (furniture, cabinet): it
		// re-radiates from two fixed points, so its lobe is a coherent
		// composite that shifts when the transmitter moves slightly —
		// the same Table 1 mechanism as rough walls.
		subs := [2]geom.Point{
			s.Pos,
			s.Pos.Add(geom.Vec{X: 0.38, Y: 0.21}),
		}
		for _, sp := range subs {
			l := stretch(tx.Dist(sp) + sp.Dist(rx))
			amp := s.Coeff / math.Sqrt2 * m.friisAmplitude(l)
			if m.Plan != nil {
				amp *= math.Pow(10, -(m.Plan.PathLossDB(tx, sp, nil)+m.Plan.PathLossDB(sp, rx, nil))/20)
			}
			addPath(Path{
				AoA:     rx.Bearing(sp),
				Length:  l,
				Gain:    cmplx.Rect(amp, -2*math.Pi*l/m.Wavelength),
				Bounces: -1,
			})
		}
	}

	sort.Slice(out, func(a, b int) bool {
		return cmplx.Abs(out[a].Gain) > cmplx.Abs(out[b].Gain)
	})
	return out
}

// firstOrder traces the single-bounce path(s) off wall wi using the
// image method: mirror the transmitter across the wall, intersect the
// image→rx segment with the wall to find the reflection point, and
// verify both legs. With WallRoughness > 0 the specular path is
// accompanied by sub-paths bouncing off fixed points displaced along
// the wall. Phases are filled in by the caller after the 3-D stretch.
func (m *Model) firstOrder(tx, rx geom.Point, wi int, w geom.Wall) []Path {
	img := w.Seg.Mirror(tx)
	refl, _, ok := geom.Seg(img, rx).Intersect(w.Seg)
	if !ok {
		return nil
	}
	// Reject grazing reflections at the wall endpoints.
	if refl.Dist(w.Seg.A) < 1e-6 || refl.Dist(w.Seg.B) < 1e-6 {
		return nil
	}
	skip := map[int]bool{wi: true}
	l := tx.Dist(refl) + refl.Dist(rx)
	amp := w.Mat.Reflectivity * m.friisAmplitude(l)
	amp *= math.Pow(10, -(m.Plan.PathLossDB(tx, refl, skip)+m.Plan.PathLossDB(refl, rx, skip))/20)

	rough := m.WallRoughness
	if rough < 0 {
		rough = 0
	}
	if rough > 1 {
		rough = 1
	}
	paths := []Path{{
		AoA:     rx.Bearing(refl),
		Length:  l,
		Gain:    complex(amp*math.Sqrt(1-rough), 0),
		Bounces: 1,
	}}
	if rough > 0 {
		dir := w.Seg.Dir()
		for _, off := range roughOffsets {
			p := refl.Add(dir.Scale(off))
			// Sub-scatter point must stay on the wall segment.
			if t, q := w.Seg.Project(p); t <= 0 || t >= 1 || q.Dist(p) > 1e-9 {
				continue
			}
			ls := tx.Dist(p) + p.Dist(rx)
			amps := w.Mat.Reflectivity * m.friisAmplitude(ls) *
				math.Sqrt(rough/float64(len(roughOffsets)))
			amps *= math.Pow(10, -(m.Plan.PathLossDB(tx, p, skip)+m.Plan.PathLossDB(p, rx, skip))/20)
			paths = append(paths, Path{
				AoA:     rx.Bearing(p),
				Length:  ls,
				Gain:    complex(amps, 0),
				Bounces: 1,
			})
		}
	}
	return paths
}

// secondOrder traces tx → wall wi → wall wj → rx via double mirroring.
func (m *Model) secondOrder(tx, rx geom.Point, wi, wj int) (Path, bool) {
	w1 := m.Plan.Walls[wi]
	w2 := m.Plan.Walls[wj]
	img1 := w1.Seg.Mirror(tx)
	img2 := w2.Seg.Mirror(img1)
	// Reflection point on wall 2 (closest to the receiver).
	r2, _, ok := geom.Seg(img2, rx).Intersect(w2.Seg)
	if !ok {
		return Path{}, false
	}
	// Reflection point on wall 1.
	r1, _, ok := geom.Seg(img1, r2).Intersect(w1.Seg)
	if !ok {
		return Path{}, false
	}
	if r1.Dist(w1.Seg.A) < 1e-6 || r1.Dist(w1.Seg.B) < 1e-6 ||
		r2.Dist(w2.Seg.A) < 1e-6 || r2.Dist(w2.Seg.B) < 1e-6 {
		return Path{}, false
	}
	skip := map[int]bool{wi: true, wj: true}
	l := tx.Dist(r1) + r1.Dist(r2) + r2.Dist(rx)
	amp := w1.Mat.Reflectivity * w2.Mat.Reflectivity * m.friisAmplitude(l)
	amp *= math.Pow(10, -(m.Plan.PathLossDB(tx, r1, skip)+
		m.Plan.PathLossDB(r1, r2, skip)+
		m.Plan.PathLossDB(r2, rx, skip))/20)
	return Path{
		AoA:     rx.Bearing(r2),
		Length:  l,
		Gain:    complex(amp, 0),
		Bounces: 2,
	}, true
}

// RxConfig controls one reception.
type RxConfig struct {
	// TxPowerDBm is the client transmit power; the transmitted
	// baseband signal is assumed unit-mean-power.
	TxPowerDBm float64
	// NoiseFloorDBm is the per-antenna thermal noise power.
	NoiseFloorDBm float64
	// PolarizationLossDB attenuates every path, modelling client
	// antenna orientation mismatch (§4.3.2: ~3 dB at 45°, ≥20 dB at
	// 90°).
	PolarizationLossDB float64
	// HeightDiff is the AP−client antenna height difference in metres
	// (§4.3.1, Appendix A).
	HeightDiff float64
	// SampleRate is the front-end rate, used to convert path delay
	// differences into integer sample offsets. Zero means pure
	// narrowband (all paths time-aligned).
	SampleRate float64
	// Rng drives the noise. Nil disables noise entirely.
	Rng *rand.Rand
}

// Reception is the result of simulating one transmission: per-antenna
// baseband sample streams, the traced paths, and the realized SNR.
type Reception struct {
	// Samples[k] is the stream at antenna k (including the ninth
	// antenna if the array has one).
	Samples [][]complex128
	// Paths are the traced paths, strongest first.
	Paths []Path
	// SNRdB is the mean per-antenna signal-to-noise ratio actually
	// realized.
	SNRdB float64
}

// Receive simulates the transmission of baseband signal sig (unit mean
// power, at cfg.SampleRate) from a client at tx through the channel to
// every element of array a. Hardware phase offsets configured on the
// array are applied, exactly as a real front end would bake them into
// the samples.
func (m *Model) Receive(tx geom.Point, a *array.Array, sig []complex128, cfg RxConfig) *Reception {
	paths := m.Paths(tx, a.Pos, cfg.HeightDiff)
	n := a.NumElements()
	ns := len(sig)
	txAmp := math.Pow(10, cfg.TxPowerDBm/20) * math.Pow(10, -cfg.PolarizationLossDB/20)

	samples := make([][]complex128, n)
	for k := range samples {
		samples[k] = make([]complex128, ns)
	}

	// Delay alignment: the earliest (direct) path defines sample 0.
	minLen := math.Inf(1)
	for _, p := range paths {
		if p.Length < minLen {
			minLen = p.Length
		}
	}

	for _, p := range paths {
		steer := a.SteeringVector(p.AoA, m.Wavelength)
		g := p.Gain * complex(txAmp, 0)
		shift := 0
		if cfg.SampleRate > 0 {
			shift = int(math.Round((p.Length - minLen) / wavePropSpeed * cfg.SampleRate))
		}
		for k := 0; k < n; k++ {
			gk := g * steer[k]
			dst := samples[k]
			for i := 0; i < ns-shift; i++ {
				dst[i+shift] += gk * sig[i]
			}
		}
	}

	var sigPower float64
	for k := 0; k < n; k++ {
		if k < len(a.PhaseOffsets) && a.PhaseOffsets[k] != 0 {
			rot := cmplx.Exp(complex(0, a.PhaseOffsets[k]))
			for i := range samples[k] {
				samples[k][i] *= rot
			}
		}
		for _, v := range samples[k] {
			sigPower += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	sigPower /= float64(n * ns)

	noisePower := math.Pow(10, cfg.NoiseFloorDBm/10)
	if cfg.Rng != nil && noisePower > 0 {
		sd := math.Sqrt(noisePower / 2)
		for k := 0; k < n; k++ {
			for i := range samples[k] {
				samples[k][i] += complex(cfg.Rng.NormFloat64()*sd, cfg.Rng.NormFloat64()*sd)
			}
		}
	}

	snr := math.Inf(1)
	if noisePower > 0 {
		snr = 10 * math.Log10(sigPower/noisePower)
	}
	return &Reception{Samples: samples, Paths: paths, SNRdB: snr}
}

const wavePropSpeed = 299792458.0

// DirectPath returns the direct path from a path list, or false if the
// tracer dropped it (fully attenuated).
func DirectPath(paths []Path) (Path, bool) {
	for _, p := range paths {
		if p.Direct {
			return p, true
		}
	}
	return Path{}, false
}

// Snapshot extracts one time-index sample vector across antennas from a
// reception: x(t) in the MUSIC formulation (Eq. 3).
func (r *Reception) Snapshot(i int) []complex128 {
	out := make([]complex128, len(r.Samples))
	for k := range r.Samples {
		out[k] = r.Samples[k][i]
	}
	return out
}

// NumSamples returns the per-antenna stream length.
func (r *Reception) NumSamples() int {
	if len(r.Samples) == 0 {
		return 0
	}
	return len(r.Samples[0])
}
