package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

const lambda = 0.1225

func freeSpace() *Model {
	return &Model{Wavelength: lambda, MaxReflections: 2}
}

func TestFreeSpaceSinglePath(t *testing.T) {
	m := freeSpace()
	paths := m.Paths(geom.Pt(0, 0), geom.Pt(10, 0), 0)
	if len(paths) != 1 {
		t.Fatalf("free space paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if !p.Direct || p.Bounces != 0 {
		t.Error("single path should be direct")
	}
	if math.Abs(p.Length-10) > 1e-12 {
		t.Errorf("length = %v", p.Length)
	}
	// AoA from AP at (10,0) back to client at (0,0) is π.
	if math.Abs(p.AoA-math.Pi) > 1e-12 {
		t.Errorf("AoA = %v", p.AoA)
	}
	wantAmp := lambda / (4 * math.Pi * 10)
	if math.Abs(cmplx.Abs(p.Gain)-wantAmp) > 1e-12 {
		t.Errorf("gain = %v, want %v", cmplx.Abs(p.Gain), wantAmp)
	}
}

func TestPathPhaseMatchesLength(t *testing.T) {
	m := freeSpace()
	p := m.Paths(geom.Pt(0, 0), geom.Pt(7.3, 2.1), 0)[0]
	wantPhase := math.Mod(-2*math.Pi*p.Length/lambda, 2*math.Pi)
	got := cmplx.Phase(p.Gain)
	d := math.Abs(math.Mod(got-wantPhase+3*math.Pi, 2*math.Pi) - math.Pi)
	if d > 1e-9 {
		t.Errorf("phase mismatch: %v", d)
	}
}

func TestSingleWallReflection(t *testing.T) {
	// Client and AP both 2 m from a long mirror wall: one direct path
	// and one single-bounce path with the reflection at the midpoint.
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(-50, 0), geom.Pt(50, 0), geom.Metal)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1}
	tx := geom.Pt(-5, 2)
	rx := geom.Pt(5, 2)
	paths := m.Paths(tx, rx, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	direct, ok := DirectPath(paths)
	if !ok {
		t.Fatal("no direct path")
	}
	if math.Abs(direct.Length-10) > 1e-9 {
		t.Errorf("direct length = %v", direct.Length)
	}
	var refl Path
	for _, p := range paths {
		if p.Bounces == 1 {
			refl = p
		}
	}
	// Image of tx is (-5,-2); image→rx length = sqrt(100+16).
	wantLen := math.Sqrt(100 + 16)
	if math.Abs(refl.Length-wantLen) > 1e-9 {
		t.Errorf("reflection length = %v, want %v", refl.Length, wantLen)
	}
	// Reflection point is (0,0); AoA from rx to it.
	wantAoA := rx.Bearing(geom.Pt(0, 0))
	if math.Abs(refl.AoA-wantAoA) > 1e-9 {
		t.Errorf("reflection AoA = %v, want %v", refl.AoA, wantAoA)
	}
	// Metal reflectivity scales the gain.
	wantAmp := geom.Metal.Reflectivity * lambda / (4 * math.Pi * wantLen)
	if math.Abs(cmplx.Abs(refl.Gain)-wantAmp) > 1e-12 {
		t.Errorf("reflection gain = %v, want %v", cmplx.Abs(refl.Gain), wantAmp)
	}
}

func TestReflectionOffSegmentRejected(t *testing.T) {
	// A short wall whose mirror point falls outside the segment must
	// produce no reflection.
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(40, 0), geom.Pt(50, 0), geom.Metal)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1}
	paths := m.Paths(geom.Pt(-5, 2), geom.Pt(5, 2), 0)
	for _, p := range paths {
		if p.Bounces == 1 {
			t.Error("reflection point off segment should be rejected")
		}
	}
}

func TestWallAttenuatesDirectPath(t *testing.T) {
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(0, -5), geom.Pt(0, 5), geom.Concrete)
	m := &Model{Plan: &plan, Wavelength: lambda}
	blocked := m.Paths(geom.Pt(-3, 0), geom.Pt(3, 0), 0)
	clear := freeSpace().Paths(geom.Pt(-3, 0), geom.Pt(3, 0), 0)
	d1, _ := DirectPath(blocked)
	d2, _ := DirectPath(clear)
	lossDB := d2.PowerDB() - d1.PowerDB()
	if math.Abs(lossDB-geom.Concrete.TransmissionLossDB) > 1e-9 {
		t.Errorf("through-wall loss = %v dB, want %v", lossDB, geom.Concrete.TransmissionLossDB)
	}
}

func TestSecondOrderReflectionExists(t *testing.T) {
	// A corridor (two parallel walls) supports a double bounce.
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(-50, 0), geom.Pt(50, 0), geom.Metal)
	plan.AddWall(geom.Pt(-50, 4), geom.Pt(50, 4), geom.Metal)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 2}
	paths := m.Paths(geom.Pt(-5, 2), geom.Pt(5, 2), 0)
	var got2 bool
	for _, p := range paths {
		if p.Bounces == 2 {
			got2 = true
			if p.Length <= 10 {
				t.Errorf("double bounce length %v should exceed direct 10", p.Length)
			}
		}
	}
	if !got2 {
		t.Error("no second-order path found in corridor")
	}
}

func TestScattererPath(t *testing.T) {
	m := freeSpace()
	m.Scatterers = []Scatterer{{Pos: geom.Pt(0, 5), Coeff: 0.5}}
	tx := geom.Pt(-5, 0)
	rx := geom.Pt(5, 0)
	paths := m.Paths(tx, rx, 0)
	// Direct plus the scatterer's two sub-paths (extended object).
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	var found bool
	wantLen := tx.Dist(geom.Pt(0, 5)) + geom.Pt(0, 5).Dist(rx)
	for _, p := range paths {
		if p.Bounces != -1 {
			continue
		}
		if math.Abs(p.Length-wantLen) < 1e-9 &&
			math.Abs(p.AoA-rx.Bearing(geom.Pt(0, 5))) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("primary scatterer sub-path missing")
	}
}

func TestHeightDiffStretchesPaths(t *testing.T) {
	m := freeSpace()
	flat := m.Paths(geom.Pt(0, 0), geom.Pt(5, 0), 0)[0]
	high := m.Paths(geom.Pt(0, 0), geom.Pt(5, 0), 1.5)[0]
	want := math.Sqrt(25 + 2.25)
	if math.Abs(high.Length-want) > 1e-12 {
		t.Errorf("3-D length = %v, want %v", high.Length, want)
	}
	if high.AoA != flat.AoA {
		t.Error("height difference must not change azimuthal AoA")
	}
}

func TestPathsSortedByGain(t *testing.T) {
	var plan geom.Floorplan
	plan.AddRect(geom.Pt(-20, -20), geom.Pt(20, 20), geom.Concrete)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 2}
	paths := m.Paths(geom.Pt(-5, 1), geom.Pt(7, 3), 0)
	for i := 1; i < len(paths); i++ {
		if cmplx.Abs(paths[i].Gain) > cmplx.Abs(paths[i-1].Gain)+1e-15 {
			t.Fatal("paths not sorted by descending gain")
		}
	}
}

func TestReceiveSteeringPhases(t *testing.T) {
	// Free space, no noise: the received snapshot across antennas must
	// equal gain × steering vector × signal.
	m := freeSpace()
	a := array.NewLinear(geom.Pt(10, 0), math.Pi/2, 8, lambda)
	tx := geom.Pt(0, 0)
	sig := []complex128{1, 1i, -1, 2}
	rec := m.Receive(tx, a, sig, RxConfig{TxPowerDBm: 0})
	if len(rec.Samples) != 8 || rec.NumSamples() != 4 {
		t.Fatalf("samples shape %d×%d", len(rec.Samples), rec.NumSamples())
	}
	steer := a.SteeringVector(a.Pos.Bearing(tx), lambda)
	g := rec.Paths[0].Gain
	for k := 0; k < 8; k++ {
		for i, s := range sig {
			want := g * steer[k] * s
			if cmplx.Abs(rec.Samples[k][i]-want) > 1e-12 {
				t.Fatalf("antenna %d sample %d = %v, want %v", k, i, rec.Samples[k][i], want)
			}
		}
	}
}

func TestReceiveAppliesPhaseOffsets(t *testing.T) {
	m := freeSpace()
	rng := rand.New(rand.NewSource(5))
	a := array.NewLinear(geom.Pt(10, 0), math.Pi/2, 4, lambda)
	a.RandomizePhaseOffsets(rng)
	sig := []complex128{1}
	rec := m.Receive(geom.Pt(0, 0), a, sig, RxConfig{})
	// Removing the offsets must recover the ideal steering relation.
	snap := rec.Snapshot(0)
	array.CorrectOffsets(snap, a.PhaseOffsets)
	steer := a.SteeringVector(a.Pos.Bearing(geom.Pt(0, 0)), lambda)
	ref := snap[0] / steer[0]
	for k := 1; k < 4; k++ {
		if cmplx.Abs(snap[k]/steer[k]-ref) > 1e-9 {
			t.Fatalf("offset correction failed at antenna %d", k)
		}
	}
}

func TestReceiveSNR(t *testing.T) {
	m := freeSpace()
	a := array.NewLinear(geom.Pt(5, 0), math.Pi/2, 4, lambda)
	rng := rand.New(rand.NewSource(6))
	sig := make([]complex128, 2000)
	for i := range sig {
		sig[i] = cmplx.Rect(1, rng.Float64()*2*math.Pi)
	}
	rec := m.Receive(geom.Pt(0, 0), a, sig, RxConfig{
		TxPowerDBm:    20,
		NoiseFloorDBm: -80,
		Rng:           rng,
	})
	// Expected: TX 20 dBm, FSPL amplitude λ/(4π·5) → power dB =
	// 20·log10(λ/(4π·5)), SNR = 20 + that − (−80).
	wantSNR := 20 + 20*math.Log10(lambda/(4*math.Pi*5)) + 80
	if math.Abs(rec.SNRdB-wantSNR) > 1 {
		t.Errorf("SNR = %v dB, want ≈ %v", rec.SNRdB, wantSNR)
	}
}

func TestReceivePolarizationLoss(t *testing.T) {
	m := freeSpace()
	a := array.NewLinear(geom.Pt(5, 0), math.Pi/2, 4, lambda)
	sig := []complex128{1, 1, 1, 1}
	base := m.Receive(geom.Pt(0, 0), a, sig, RxConfig{})
	att := m.Receive(geom.Pt(0, 0), a, sig, RxConfig{PolarizationLossDB: 20})
	ratio := cmplx.Abs(base.Samples[0][0]) / cmplx.Abs(att.Samples[0][0])
	if math.Abs(20*math.Log10(ratio)-20) > 1e-9 {
		t.Errorf("polarization loss ratio = %v dB", 20*math.Log10(ratio))
	}
}

func TestReceiveDelaySpread(t *testing.T) {
	// With a wideband config, a much longer reflected path lands at a
	// later sample index.
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(-200, 40), geom.Pt(200, 40), geom.Metal)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1}
	a := array.NewLinear(geom.Pt(30, 0), math.Pi/2, 2, lambda)
	sig := []complex128{1} // a single impulse exposes the delay taps
	rec := m.Receive(geom.Pt(-30, 0), a, sig, RxConfig{SampleRate: 40e6})
	// Direct 60 m; reflected ≈ sqrt(60²+80²) = 100 m → Δ40 m ≈ 5.3
	// samples at 40 Msps. The impulse occupies only sample 0, so the
	// reflected copy is clipped; direct energy must dominate sample 0.
	if cmplx.Abs(rec.Samples[0][0]) == 0 {
		t.Error("direct impulse missing at sample 0")
	}
	// Now with a longer signal the reflection shows up shifted.
	sig = make([]complex128, 20)
	sig[0] = 1
	rec = m.Receive(geom.Pt(-30, 0), a, sig, RxConfig{SampleRate: 40e6})
	shift := int(math.Round((100 - 60) / 299792458.0 * 40e6))
	if cmplx.Abs(rec.Samples[0][shift]) == 0 {
		t.Errorf("reflected impulse missing at sample %d", shift)
	}
}

func TestMinPathGainFilters(t *testing.T) {
	m := freeSpace()
	m.Scatterers = []Scatterer{{Pos: geom.Pt(0, 5), Coeff: 1e-9}}
	paths := m.Paths(geom.Pt(-5, 0), geom.Pt(5, 0), 0)
	if len(paths) != 1 {
		t.Errorf("negligible scatterer not filtered: %d paths", len(paths))
	}
}

func TestDirectPathMissing(t *testing.T) {
	if _, ok := DirectPath(nil); ok {
		t.Error("DirectPath(nil) should be false")
	}
}
