package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestVerticalSteeringZeroElevation(t *testing.T) {
	for _, v := range VerticalSteering(6, lambda/2, 0, lambda) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("zero-elevation steering = %v", v)
		}
	}
}

func TestVerticalSteeringPhaseProgression(t *testing.T) {
	phi := 0.4
	v := VerticalSteering(4, lambda/2, phi, lambda)
	want := math.Pi * math.Sin(phi) // per-element phase at λ/2 spacing
	for k := 1; k < 4; k++ {
		got := cmplx.Phase(v[k] / v[k-1])
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("element %d phase step = %v, want %v", k, got, want)
		}
	}
}

func TestPathElevationSigns(t *testing.T) {
	if PathElevation(10, 2, 1) <= 0 {
		t.Error("tx above rx should be positive elevation")
	}
	if PathElevation(10, 1, 2) >= 0 {
		t.Error("tx below rx should be negative elevation")
	}
	if PathElevation(10, 1, 1) != 0 {
		t.Error("equal heights should be zero elevation")
	}
}

func TestReceiveVerticalFreeSpacePhases(t *testing.T) {
	m := &Model{Wavelength: lambda}
	tx := geom.Pt(0, 0)
	rx := geom.Pt(6, 0)
	rec := m.ReceiveVertical(tx, rx, 1.0, 2.5, 4, lambda/2, []complex128{1, 1i}, RxConfig{})
	if len(rec.Samples) != 4 || rec.NumSamples() != 2 {
		t.Fatalf("shape %dx%d", len(rec.Samples), rec.NumSamples())
	}
	// Element-to-element ratio must match the vertical steering for
	// the direct path's elevation.
	phi := PathElevation(6, 1.0, 2.5)
	steer := VerticalSteering(4, lambda/2, phi, lambda)
	for k := 1; k < 4; k++ {
		got := rec.Samples[k][0] / rec.Samples[k-1][0]
		want := steer[k] / steer[k-1]
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("element %d ratio %v, want %v", k, got, want)
		}
	}
	// Path length must be the 3-D length.
	want3d := math.Sqrt(36 + 1.5*1.5)
	if math.Abs(rec.Paths[0].Length-want3d) > 1e-9 {
		t.Errorf("3-D length = %v, want %v", rec.Paths[0].Length, want3d)
	}
}

func TestReceiveVerticalNoiseSNR(t *testing.T) {
	m := &Model{Wavelength: lambda}
	rng := rand.New(rand.NewSource(3))
	sig := make([]complex128, 500)
	for i := range sig {
		sig[i] = cmplx.Rect(1, rng.Float64()*2*math.Pi)
	}
	rec := m.ReceiveVertical(geom.Pt(0, 0), geom.Pt(5, 0), 1, 2.5, 4, lambda/2, sig, RxConfig{
		TxPowerDBm:    20,
		NoiseFloorDBm: -80,
		Rng:           rng,
	})
	if math.IsInf(rec.SNRdB, 1) || rec.SNRdB < 10 {
		t.Errorf("implausible SNR %v", rec.SNRdB)
	}
}

func TestWallRoughnessSplitsEnergy(t *testing.T) {
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(-50, 0), geom.Pt(50, 0), geom.Metal)
	smooth := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1}
	rough := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1, WallRoughness: 0.5}
	tx, rx := geom.Pt(-5, 2), geom.Pt(5, 2)

	ps := smooth.Paths(tx, rx, 0)
	pr := rough.Paths(tx, rx, 0)
	if len(pr) <= len(ps) {
		t.Fatalf("rough wall should add sub-paths: %d vs %d", len(pr), len(ps))
	}
	// Total single-bounce energy approximately conserved (sub-paths are
	// slightly longer, so allow a few percent).
	var es, er float64
	for _, p := range ps {
		if p.Bounces == 1 {
			es += real(p.Gain)*real(p.Gain) + imag(p.Gain)*imag(p.Gain)
		}
	}
	for _, p := range pr {
		if p.Bounces == 1 {
			er += real(p.Gain)*real(p.Gain) + imag(p.Gain)*imag(p.Gain)
		}
	}
	if er > es || er < 0.7*es {
		t.Errorf("rough energy %v vs smooth %v", er, es)
	}
}

func TestWallRoughnessClamped(t *testing.T) {
	var plan geom.Floorplan
	plan.AddWall(geom.Pt(-50, 0), geom.Pt(50, 0), geom.Metal)
	m := &Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1, WallRoughness: 7}
	// Roughness > 1 clamps rather than producing negative specular
	// energy; paths remain finite.
	for _, p := range m.Paths(geom.Pt(-5, 2), geom.Pt(5, 2), 0) {
		if math.IsNaN(real(p.Gain)) || math.IsNaN(imag(p.Gain)) {
			t.Fatal("NaN gain with clamped roughness")
		}
	}
}

func TestPathPowerDB(t *testing.T) {
	p := Path{Gain: complex(0.1, 0)}
	if got := p.PowerDB(); math.Abs(got+20) > 1e-12 {
		t.Errorf("PowerDB = %v, want -20", got)
	}
	if !math.IsInf(Path{}.PowerDB(), -1) {
		t.Error("zero gain should be -Inf dB")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	r := &Reception{Samples: [][]complex128{{1, 2}, {3, 4}}}
	s := r.Snapshot(1)
	if s[0] != 2 || s[1] != 4 {
		t.Errorf("Snapshot = %v", s)
	}
	if r.NumSamples() != 2 {
		t.Errorf("NumSamples = %d", r.NumSamples())
	}
	empty := &Reception{}
	if empty.NumSamples() != 0 {
		t.Error("empty NumSamples should be 0")
	}
}
