// Package stats provides the summary statistics and CDF machinery the
// experiment harness uses to report location-error distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of non-negative values (location errors in
// centimetres, latencies in milliseconds, …).
type Summary struct {
	N             int
	Mean, Median  float64
	P90, P95, P98 float64
	Min, Max      float64
}

// Summarize computes a Summary. It copies and sorts the input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: Percentile(s, 50),
		P90:    Percentile(s, 90),
		P95:    Percentile(s, 95),
		P98:    Percentile(s, 98),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// Percentile returns the p-th percentile (0–100) of sorted values via
// linear interpolation. It panics if the input is unsorted in debug
// use; callers pass sorted data.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(n-1)
	i := int(math.Floor(pos))
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// X holds the sorted sample values.
	X []float64
}

// NewCDF builds an empirical CDF from a sample (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{X: s}
}

// At returns the empirical P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	// Count of values ≤ x via binary search.
	n := sort.SearchFloat64s(c.X, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.X))
}

// Quantile returns the q-th quantile (0–1).
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.X, q*100)
}

// Table renders the CDF sampled at the given x values as aligned rows
// "x  P(X≤x)", mirroring the paper's CDF figures in text form.
func (c *CDF) Table(points []float64) string {
	var b strings.Builder
	for _, x := range points {
		fmt.Fprintf(&b, "%10.1f  %6.3f\n", x, c.At(x))
	}
	return b.String()
}

// String renders a Summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f median=%.1f p90=%.1f p95=%.1f p98=%.1f max=%.1f",
		s.N, s.Mean, s.Median, s.P90, s.P95, s.P98, s.Max)
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Median returns the median of the (unsorted) input.
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Percentile(s, 50)
}
