package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Error("empty Summarize should be zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(sorted, 50); got != 25 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).At(1)) {
		t.Error("empty CDF should return NaN")
	}
}

func TestCDFTable(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	out := c.Table([]float64{1, 2})
	if !strings.Contains(out, "0.500") || !strings.Contains(out, "1.000") {
		t.Errorf("Table = %q", out)
	}
}

func TestMeanMedian(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
}
