// Package mat implements the small dense complex linear algebra kernel
// that ArrayTrack's MUSIC pipeline needs: complex matrices, products,
// Hermitian transposes, and a cyclic-Jacobi eigendecomposition of
// Hermitian matrices.
//
// Go's standard library has no numerical linear algebra, and the
// correlation matrices involved are tiny (at most 16×16 for a
// two-WARP, sixteen-antenna AP), so a from-scratch Jacobi solver is
// both sufficient and numerically excellent: Jacobi is backward stable
// and converges quadratically once off-diagonal mass is small.
package mat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, row-major
}

// New returns a zero matrix with the given shape. It panics if either
// dimension is non-positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equalish reports whether m and o have the same shape and all entries
// within tol of each other (in complex modulus).
func (m *Matrix) Equalish(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + o as a new matrix.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// Sub returns m - o as a new matrix.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s complex128) *Matrix {
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = s * m.Data[i]
	}
	return r
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := o.Data[k*o.Cols:]
			out := r.Data[i*o.Cols:]
			for j := 0; j < o.Cols; j++ {
				out[j] += a * row[j]
			}
		}
	}
	return r
}

// H returns the Hermitian (conjugate) transpose of m.
func (m *Matrix) H() *Matrix {
	r := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return r
}

// T returns the plain transpose of m.
func (m *Matrix) T() *Matrix {
	r := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, m.At(i, j))
		}
	}
	return r
}

// MulVec returns m·v for a column vector v of length m.Cols.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	return m.MulVecInto(make([]complex128, m.Rows), v)
}

// MulVecInto computes m·v into dst (length m.Rows) and returns dst.
// dst must not alias v.
func (m *Matrix) MulVecInto(dst, v []complex128) []complex128 {
	if len(v) != m.Cols {
		panic("mat: MulVec length mismatch")
	}
	if len(dst) != m.Rows {
		panic("mat: MulVecInto dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols:]
		for j := 0; j < m.Cols; j++ {
			s += row[j] * v[j]
		}
		dst[i] = s
	}
	return dst
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Submatrix returns the r×c block of m with top-left corner (i0, j0).
func (m *Matrix) Submatrix(i0, j0, r, c int) *Matrix {
	if i0 < 0 || j0 < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic("mat: Submatrix out of range")
	}
	s := New(r, c)
	for i := 0; i < r; i++ {
		copy(s.Data[i*c:(i+1)*c], m.Data[(i0+i)*m.Cols+j0:(i0+i)*m.Cols+j0+c])
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// IsHermitian reports whether m equals its Hermitian transpose within
// tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

// OuterAccumulate adds v·vᴴ (scaled by w) into m in place. This is the
// inner loop of sample-correlation-matrix estimation, so it avoids
// allocation.
func (m *Matrix) OuterAccumulate(v []complex128, w float64) {
	if m.Rows != len(v) || m.Cols != len(v) {
		panic("mat: OuterAccumulate shape mismatch")
	}
	for i := range v {
		vi := v[i] * complex(w, 0)
		row := m.Data[i*m.Cols:]
		for j := range v {
			row[j] += vi * cmplx.Conj(v[j])
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%8.4f%+8.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// ErrNotHermitian is returned by EigHermitian when the input is not
// Hermitian within the solver's tolerance.
var ErrNotHermitian = errors.New("mat: matrix is not Hermitian")

// Eig holds the result of a Hermitian eigendecomposition: A·V = V·diag(λ)
// with real eigenvalues sorted ascending and orthonormal eigenvectors in
// the columns of V.
type Eig struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Vectors has the corresponding eigenvectors in its columns:
	// Vectors.Col(k) pairs with Values[k].
	Vectors *Matrix
}

// EigHermitian computes the full eigendecomposition of a Hermitian
// matrix using the cyclic complex Jacobi method. The input is not
// modified. For the ≤16×16 matrices ArrayTrack produces the residual
// ‖AV−VΛ‖ is at machine-precision level.
func EigHermitian(a *Matrix) (Eig, error) {
	return EigHermitianWS(a, nil)
}

// EigHermitianRefWS is the original complex128-arithmetic cyclic-Jacobi
// solver, retained as the pinned reference implementation: the packed
// split-plane kernel in eig_packed.go (what EigHermitianWS now runs) is
// tested value-identical against it, and the kernels experiment times
// the two against each other for the before/after trajectory. A nil ws
// allocates fresh buffers; a non-nil ws makes the decomposition
// allocation-free in steady state, at the cost that the returned Eig
// aliases ws and is valid only until the next call with the same
// workspace.
func EigHermitianRefWS(a *Matrix, ws *EigWorkspace) (Eig, error) {
	n := a.Rows
	if a.Cols != n {
		return Eig{}, errors.New("mat: EigHermitian needs a square matrix")
	}
	// Scale the Hermitian check to the matrix magnitude.
	scale := a.FrobeniusNorm()
	if scale == 0 {
		// The zero matrix: all eigenvalues zero, identity eigenvectors.
		if ws == nil {
			return Eig{Values: make([]float64, n), Vectors: Identity(n)}, nil
		}
		ws.ensure(n)
		for i := range ws.vals {
			ws.vals[i] = 0
		}
		return Eig{Values: ws.vals, Vectors: IdentityInto(ws.vecs)}, nil
	}
	if !a.IsHermitian(1e-9 * scale) {
		return Eig{}, ErrNotHermitian
	}

	var w, v *Matrix
	if ws == nil {
		w = a.Clone()
		v = Identity(n)
	} else {
		ws.ensure(n)
		w = ws.w.CopyInto(a)
		v = IdentityInto(ws.v)
	}
	// Force exact Hermitian symmetry so rounding in the input cannot
	// push the iteration off the Hermitian manifold.
	for i := 0; i < n; i++ {
		w.Set(i, i, complex(real(w.At(i, i)), 0))
		for j := i + 1; j < n; j++ {
			v := (w.At(i, j) + cmplx.Conj(w.At(j, i))) / 2
			w.Set(i, j, v)
			w.Set(j, i, cmplx.Conj(v))
		}
	}

	const maxSweeps = 60
	tol := 1e-14 * scale
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if cmplx.Abs(apq) <= tol/float64(n) {
					continue
				}
				jacobiRotate(w, v, p, q)
			}
		}
	}

	eig := Eig{Vectors: v}
	if ws == nil {
		eig.Values = make([]float64, n)
	} else {
		eig.Values = ws.vals
	}
	for i := 0; i < n; i++ {
		eig.Values[i] = real(w.At(i, i))
	}
	sortEigWS(&eig, ws)
	return eig, nil
}

// jacobiRotate applies a unitary plane rotation in the (p,q) plane that
// zeroes w[p][q], updating both w (two-sided) and the accumulated
// eigenvector matrix v (one-sided, columns).
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))
	apq := w.At(p, q)
	mag := cmplx.Abs(apq)
	if mag == 0 {
		return
	}
	// Phase factor so the rotated off-diagonal element is real:
	// apq = mag·e^{iφ}.
	phase := apq / complex(mag, 0)

	// Classic symmetric Jacobi angle on the "realified" 2×2 block
	// [[app, mag], [mag, aqq]].
	theta := (aqq - app) / (2 * mag)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	// Complex rotation: columns p,q of the unitary
	//   G[p][p]=c, G[p][q]=s·phase, G[q][p]=-s·conj(phase), G[q][q]=c
	// applied as w ← Gᴴ w G.
	cs := complex(c, 0)
	sp := complex(s, 0) * phase

	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, cs*wkp-cmplx.Conj(sp)*wkq)
		w.Set(k, q, sp*wkp+cs*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, cs*wpk-sp*wqk)
		w.Set(q, k, cmplx.Conj(sp)*wpk+cs*wqk)
	}
	// Clean up rounding drift on the pivots.
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))

	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, cs*vkp-cmplx.Conj(sp)*vkq)
		v.Set(k, q, sp*vkp+cs*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			v := m.At(i, j)
			s += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return math.Sqrt(s)
}

// sortEigWS sorts eigenpairs by ascending eigenvalue, permuting the
// eigenvector columns to match. With a workspace the permuted values
// land in ws.idx-driven copies of ws-owned buffers; without one they
// are freshly allocated. The sort itself is a pure permutation, so
// both paths are bit-identical.
func sortEigWS(e *Eig, ws *EigWorkspace) {
	n := len(e.Values)
	var idx []int
	if ws == nil {
		idx = make([]int, n)
	} else {
		idx = ws.idx
	}
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: n ≤ 16.
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && e.Values[idx[j-1]] > e.Values[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	var vals []float64
	var vecs *Matrix
	if ws == nil {
		vals = make([]float64, n)
		vecs = New(e.Vectors.Rows, n)
	} else {
		// e.Values aliases ws.vals and e.Vectors aliases ws.v, so the
		// sorted copies must land in the workspace's second pair of
		// buffers.
		vals = ws.sortedVals(n)
		vecs = ReuseMatrix(ws.vecs, e.Vectors.Rows, n)
		ws.vecs = vecs
	}
	for k, src := range idx {
		vals[k] = e.Values[src]
		for r := 0; r < e.Vectors.Rows; r++ {
			vecs.Set(r, k, e.Vectors.At(r, src))
		}
	}
	e.Values = vals
	e.Vectors = vecs
}

// VecDot returns the complex inner product ⟨a,b⟩ = Σ conj(a_i)·b_i.
func VecDot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("mat: VecDot length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// VecNorm returns the Euclidean norm of v.
func VecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}
