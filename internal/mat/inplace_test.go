package mat

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randomHermitian(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(rng, 2+rng.Intn(6), 2+rng.Intn(6))
		b := randomMatrix(rng, a.Cols, 2+rng.Intn(6))
		want := a.Mul(b)
		dst := New(a.Rows, b.Cols)
		// Pre-pollute dst to prove it is fully overwritten.
		for i := range dst.Data {
			dst.Data[i] = complex(99, -99)
		}
		got := MulInto(dst, a, b)
		if got != dst {
			t.Fatal("MulInto must return dst")
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: element %d differs: %v vs %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestHIntoMatchesH(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 5, 3)
	want := a.H()
	got := HInto(New(3, 5), a)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestReuseMatrix(t *testing.T) {
	m := ReuseMatrix(nil, 4, 4)
	if m.Rows != 4 || m.Cols != 4 {
		t.Fatalf("got %d×%d", m.Rows, m.Cols)
	}
	backing := &m.Data[0]
	m2 := ReuseMatrix(m, 3, 3)
	if m2 != m || &m2.Data[0] != backing {
		t.Fatal("shrinking must reuse the backing array")
	}
	m3 := ReuseMatrix(m, 8, 8)
	if m3.Rows != 8 || len(m3.Data) != 64 {
		t.Fatal("growth must resize")
	}
}

func TestIdentityInto(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(3)), 4, 4)
	IdentityInto(m)
	if !m.Equalish(Identity(4), 0) {
		t.Fatal("IdentityInto not the identity")
	}
}

// TestEigWSBitIdentical is the core zero-alloc guarantee: the
// workspace path must produce bit-for-bit the same eigendecomposition
// as the allocating path, across repeated reuse and varying sizes.
func TestEigWSBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws EigWorkspace
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		a := randomHermitian(rng, n)
		want, err := EigHermitian(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EigHermitianWS(a, &ws)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("trial %d: eigenvalue %d differs: %v vs %v", trial, i, got.Values[i], want.Values[i])
			}
		}
		for i := range want.Vectors.Data {
			if got.Vectors.Data[i] != want.Vectors.Data[i] {
				t.Fatalf("trial %d: eigenvector element %d differs", trial, i)
			}
		}
	}
}

func TestEigWSZeroMatrix(t *testing.T) {
	var ws EigWorkspace
	e, err := EigHermitianWS(New(3, 3), &ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Fatal("zero matrix must have zero eigenvalues")
		}
	}
	if !e.Vectors.Equalish(Identity(3), 0) {
		t.Fatal("zero matrix must have identity eigenvectors")
	}
}

func TestEigWSZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomHermitian(rng, 8)
	var ws EigWorkspace
	// Warm the workspace.
	if _, err := EigHermitianWS(a, &ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := EigHermitianWS(a, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EigHermitianWS allocated %.1f/op in steady state, want 0", allocs)
	}
}
