package mat

import (
	"math/rand"
	"testing"
)

// TestEigPackedMatchesRef pins the packed split-plane kernel against
// the retained complex128 reference: identical rotation sequence,
// value-identical eigenvalues and eigenvectors (== on float64
// components treats the only permitted divergence, zero signs, as
// equal) over random Hermitian matrices of every supported order.
func TestEigPackedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var wsP, wsR EigWorkspace
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(15) // up to 16×16, the two-WARP maximum
		a := randomHermitian(rng, n)
		want, err := EigHermitianRefWS(a, &wsR)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EigHermitianWS(a, &wsP)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("trial %d (n=%d): eigenvalue %d differs: %v vs %v",
					trial, n, i, got.Values[i], want.Values[i])
			}
		}
		for i := range want.Vectors.Data {
			if got.Vectors.Data[i] != want.Vectors.Data[i] {
				t.Fatalf("trial %d (n=%d): eigenvector element %d differs: %v vs %v",
					trial, n, i, got.Vectors.Data[i], want.Vectors.Data[i])
			}
		}
	}
}

// TestEigPackedCorrelationShapes runs the packed kernel against the
// reference on PSD correlation-like matrices (rank-deficient, repeated
// eigenvalues) where pivot skips and zero rotations exercise the
// zero-sign reasoning hardest.
func TestEigPackedCorrelationShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var wsP, wsR EigWorkspace
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		rank := 1 + rng.Intn(n)
		a := New(n, n)
		for s := 0; s < rank; s++ {
			v := make([]complex128, n)
			for i := range v {
				v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			a.OuterAccumulate(v, rng.Float64())
		}
		want, err := EigHermitianRefWS(a, &wsR)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EigHermitianWS(a, &wsP)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("trial %d: eigenvalue %d differs", trial, i)
			}
		}
		for i := range want.Vectors.Data {
			if got.Vectors.Data[i] != want.Vectors.Data[i] {
				t.Fatalf("trial %d: eigenvector element %d differs", trial, i)
			}
		}
	}
}

// TestEigPackedRejectsNonHermitian checks the packed entry point keeps
// the reference's input gates.
func TestEigPackedRejectsNonHermitian(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	var ws EigWorkspace
	if _, err := EigHermitianWS(a, &ws); err == nil {
		t.Error("expected ErrNotHermitian")
	}
	b := New(2, 3)
	if _, err := EigHermitianWS(b, &ws); err == nil {
		t.Error("expected error for non-square")
	}
}

func BenchmarkEigHermitianWS8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(8, r)
	var ws EigWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigHermitianWS(a, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigHermitianRefWS8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(8, r)
	var ws EigWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigHermitianRefWS(a, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigHermitianWS16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(16, r)
	var ws EigWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigHermitianWS(a, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigHermitianRefWS16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(16, r)
	var ws EigWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigHermitianRefWS(a, &ws); err != nil {
			b.Fatal(err)
		}
	}
}
