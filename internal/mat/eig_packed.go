package mat

// Packed split-plane cyclic Jacobi. The reference solver (EigHermitianRefWS)
// keeps the working matrix as []complex128 and pays complex-multiply
// arithmetic for rotations whose left factor is purely real: every
// cs*x costs four multiplies and two adds even though cs has no
// imaginary part, and every element touch re-derives i*Cols+j. This
// kernel stores the Hermitian work matrix and the accumulating
// eigenvector matrix as separate re/im float64 planes (row-major, the
// layout that benchmarked ahead of interleaved on the ≤16×16 sizes
// ArrayTrack produces) and expands each complex rotation into the
// minimal real-arithmetic form.
//
// Exactness contract: for every finite input the packed kernel performs
// the same sequence of floating-point operations as the reference, with
// one class of exceptions — products by a coefficient that is exactly
// zero (the imaginary part of cs, which the reference multiplies in and
// this kernel drops). Dropping fl(0·x) terms can change only the *sign*
// of zero results: a zero-sign difference propagates only to other
// zeros under +, −, ×, never flips a comparison (±0 compare equal and
// neither is > the other), and cannot reach a nonzero value. Every
// control-flow decision the solver takes — the Hermitian gate, the
// per-sweep off-diagonal-norm stop, the per-pair pivot skip (both use
// magnitudes, which square zero signs away), the rotation-angle branch,
// and the eigenvalue sort — therefore evaluates identically, so the
// rotation sequence is identical and eigenvalues/eigenvectors are
// value-identical (== as float64) to the reference. The phase factor
// keeps the runtime's complex division (Smith's algorithm) rather than
// a hand expansion precisely to stay on the reference's rounding.
// TestEigPackedMatchesRef pins this over random Hermitian matrices of
// every supported order.

import (
	"errors"
	"math"
)

// EigHermitianWS computes the full eigendecomposition of a Hermitian
// matrix using the packed split-plane cyclic Jacobi kernel, drawing
// every buffer from ws. A nil ws allocates fresh buffers (this is what
// EigHermitian does); a non-nil ws makes the decomposition
// allocation-free in steady state, at the cost that the returned Eig
// aliases ws and is valid only until the next call with the same
// workspace. Results are value-identical to EigHermitianRefWS.
func EigHermitianWS(a *Matrix, ws *EigWorkspace) (Eig, error) {
	n := a.Rows
	if a.Cols != n {
		return Eig{}, errors.New("mat: EigHermitian needs a square matrix")
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		// The zero matrix: all eigenvalues zero, identity eigenvectors.
		if ws == nil {
			return Eig{Values: make([]float64, n), Vectors: Identity(n)}, nil
		}
		ws.ensureShared(n)
		for i := range ws.vals {
			ws.vals[i] = 0
		}
		return Eig{Values: ws.vals, Vectors: IdentityInto(ws.vecs)}, nil
	}
	if !a.IsHermitian(1e-9 * scale) {
		return Eig{}, ErrNotHermitian
	}

	var local EigWorkspace
	if ws == nil {
		ws = &local
	}
	ws.ensurePacked(n)
	wre, wim := ws.wre, ws.wim
	vre, vim := ws.vre, ws.vim

	// Pack the input, forcing exact Hermitian symmetry exactly as the
	// reference does: real diagonal, off-diagonal pairs replaced by
	// (a[i][j] + conj(a[j][i]))/2. The reference's complex division by
	// (2+0i) reduces componentwise to re/2, im/2 under Smith's
	// algorithm, so the packed form below rounds identically.
	for i := 0; i < n; i++ {
		wre[i*n+i] = real(a.Data[i*n+i])
		wim[i*n+i] = 0
		for j := i + 1; j < n; j++ {
			hij := a.Data[i*n+j]
			hji := a.Data[j*n+i]
			sr := (real(hij) + real(hji)) / 2
			si := (imag(hij) - imag(hji)) / 2
			wre[i*n+j], wim[i*n+j] = sr, si
			wre[j*n+i], wim[j*n+i] = sr, -si
		}
	}
	for i := range vre {
		vre[i], vim[i] = 0, 0
	}
	for i := 0; i < n; i++ {
		vre[i*n+i] = 1
	}

	const maxSweeps = 60
	tol := 1e-14 * scale
	thresh := tol / float64(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if packedOffDiagNorm(wre, wim, n) <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				are, aim := wre[p*n+q], wim[p*n+q]
				// One Hypot serves both the pivot-skip test and the
				// rotation (the reference computes it twice with the
				// same operands — identical value).
				mag := math.Hypot(are, aim)
				if mag <= thresh {
					continue
				}
				packedJacobiRotate(wre, wim, vre, vim, n, p, q, are, aim, mag)
			}
		}
	}

	// Diagonal → eigenvalues, sort ascending (stable insertion sort,
	// matching sortEigWS's comparisons), emit the permuted columns as a
	// complex matrix for the subspace consumers.
	vals := ws.vals
	for i := 0; i < n; i++ {
		vals[i] = wre[i*n+i]
	}
	idx := ws.idx
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && vals[idx[j-1]] > vals[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	svals := ws.sortedVals(n)
	vecs := ReuseMatrix(ws.vecs, n, n)
	ws.vecs = vecs
	for k, src := range idx {
		svals[k] = vals[src]
		cre := vre[src*n : src*n+n] // eigenvector columns are stored column-major
		cim := vim[src*n : src*n+n]
		for r := 0; r < n; r++ {
			vecs.Data[r*n+k] = complex(cre[r], cim[r])
		}
	}
	return Eig{Values: svals, Vectors: vecs}, nil
}

// packedJacobiRotate is jacobiRotate on split planes: a unitary plane
// rotation in the (p,q) plane zeroing w[p][q], applied two-sided to w
// and one-sided to the eigenvector columns. are/aim/mag are the pivot
// element and its magnitude, already loaded by the sweep loop.
//
// Beyond the plane layout, two structure exploits halve the work while
// staying on the reference's values:
//
//  1. Hermitian mirroring. The reference updates columns p,q from the
//     pre-rotation state, then rows p,q. Because the iterate is kept
//     *exactly* conjugate-symmetric (the symmetrization pass writes
//     conjugate pairs, and every rounding is sign-symmetric: fl(−x) =
//     −fl(x), fl(a−b) = −fl(b−a)), the reference's row-pass results
//     for k ∉ {p,q} are the exact conjugates of its column-pass
//     results. This kernel therefore computes only the row pass
//     (contiguous) and stores conjugates into the columns — no second
//     set of multiplies. The 2×2 overlap block, which the reference
//     computes sequentially (row pass reading column-pass outputs), is
//     replicated term by term below; only the real diagonal survives
//     its pivot cleanup.
//  2. The phase division (are+i·aim)/(mag+0i) through the runtime's
//     Smith algorithm reduces, for a real positive divisor, to exactly
//     fl(are/mag) and fl(aim/mag) (the ratio term is a signed zero),
//     so two scalar divides replace the complex128div call.
func packedJacobiRotate(wre, wim, vre, vim []float64, n, p, q int, are, aim, mag float64) {
	app := wre[p*n+p]
	aqq := wre[q*n+q]
	// Phase factor so the rotated off-diagonal element is real:
	// apq = mag·e^{iφ}.
	phre := are / mag
	phim := aim / mag

	// Classic symmetric Jacobi angle on the "realified" 2×2 block.
	theta := (aqq - app) / (2 * mag)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	// sp = s·phase; cs = c (purely real).
	spre := s * phre
	spim := s * phim

	// Rows p,q over all k ∉ {p,q} (contiguous), with conjugate stores
	// into columns p,q:
	//   w[p,k] = c·w[p,k] − sp·w[q,k]
	//   w[q,k] = conj(sp)·w[p,k] + c·w[q,k]
	//   w[k,p] = conj(w[p,k]);  w[k,q] = conj(w[q,k])
	rpre := wre[p*n : p*n+n]
	rpim := wim[p*n : p*n+n]
	rqre := wre[q*n : q*n+n]
	rqim := wim[q*n : q*n+n]
	ip, iq := p, q
	for k := 0; k < n; k++ {
		if k == p || k == q {
			ip += n
			iq += n
			continue
		}
		wpkre, wpkim := rpre[k], rpim[k]
		wqkre, wqkim := rqre[k], rqim[k]
		npre := c*wpkre - (spre*wqkre - spim*wqkim)
		npim := c*wpkim - (spre*wqkim + spim*wqkre)
		nqre := (spre*wpkre + spim*wpkim) + c*wqkre
		nqim := (spre*wpkim - spim*wpkre) + c*wqkim
		rpre[k], rpim[k] = npre, npim
		rqre[k], rqim[k] = nqre, nqim
		wre[ip], wim[ip] = npre, -npim
		wre[iq], wim[iq] = nqre, -nqim
		ip += n
		iq += n
	}
	// 2×2 overlap block, replicating the reference's sequence: column
	// pass from pre-rotation values (wpp=(app,0), wpq=(are,aim),
	// wqp=(are,−aim), wqq=(aqq,0)), then the row pass on those outputs.
	// Off-diagonals and diagonal imaginary parts die in pivot cleanup,
	// so only the surviving real diagonals are computed.
	h := spre*are + spim*aim
	wppre := c*app - h        // re of column-pass w[p][p]
	wqpre := c*are - spre*aqq // column-pass w[q][p]
	wqpim := spim*aqq - c*aim
	wpqre := spre*app + c*are // column-pass w[p][q]
	wpqim := spim*app + c*aim
	wqqre := h + c*aqq // re of column-pass w[q][q]
	newpp := c*wppre - (spre*wqpre - spim*wqpim)
	newqq := (spre*wpqre + spim*wpqim) + c*wqqre
	rpre[p], rpim[p] = newpp, 0
	rqre[q], rqim[q] = newqq, 0
	rpre[q], rpim[q] = 0, 0
	rqre[p], rqim[p] = 0, 0

	// Eigenvector columns p,q — stored column-major (vre[col*n+row]),
	// so this update is contiguous too. Same operation tree as the
	// reference's v-column update.
	vpre := vre[p*n : p*n+n]
	vpim := vim[p*n : p*n+n]
	vqre := vre[q*n : q*n+n]
	vqim := vim[q*n : q*n+n]
	for k := 0; k < n; k++ {
		vkpre, vkpim := vpre[k], vpim[k]
		vkqre, vkqim := vqre[k], vqim[k]
		vpre[k] = c*vkpre - (spre*vkqre + spim*vkqim)
		vpim[k] = c*vkpim - (spre*vkqim - spim*vkqre)
		vqre[k] = (spre*vkpre - spim*vkpim) + c*vkqre
		vqim[k] = (spre*vkpim + spim*vkpre) + c*vkqim
	}
}

// packedOffDiagNorm is offDiagNorm on split planes: same element order,
// same accumulation tree, so the sweep-termination decision is
// identical to the reference's.
func packedOffDiagNorm(wre, wim []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		row := i * n
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			re, im := wre[row+j], wim[row+j]
			s += re*re + im*im
		}
	}
	return math.Sqrt(s)
}
