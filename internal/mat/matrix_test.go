package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New shape wrong: %+v", m)
	}
	m.Set(1, 2, 3+4i)
	if m.At(1, 2) != 3+4i {
		t.Errorf("At = %v", m.At(1, 2))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1) did not panic")
		}
	}()
	New(0, 1)
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
	if !m.Equalish(FromRows([][]complex128{{1, 2}, {3, 4}}), 0) {
		t.Error("Equalish false negative")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	b := FromRows([][]complex128{{1, 1}, {1, 1}})
	if got := a.Add(b).At(0, 1); got != 1+2i {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b).At(1, 0); got != 2 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2i).At(0, 0); got != 2i {
		t.Errorf("Scale = %v", got)
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 2i}})
	if !a.Mul(Identity(2)).Equalish(a, 1e-15) {
		t.Error("A·I ≠ A")
	}
	if !Identity(2).Mul(a).Equalish(a, 1e-15) {
		t.Error("I·A ≠ A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !a.Mul(b).Equalish(want, 1e-15) {
		t.Errorf("Mul = %v", a.Mul(b))
	}
}

func TestHermitianTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2 - 3i}, {4, 5i}})
	h := a.H()
	if h.At(0, 0) != 1-1i || h.At(1, 0) != 2+3i || h.At(0, 1) != 4 || h.At(1, 1) != -5i {
		t.Errorf("H = %v", h)
	}
	if !a.H().H().Equalish(a, 0) {
		t.Error("(Aᴴ)ᴴ ≠ A")
	}
	tt := a.T()
	if tt.At(0, 1) != 4 || tt.At(1, 0) != 2-3i {
		t.Errorf("T = %v", tt)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1, 1i})
	if got[0] != 1+2i || got[1] != 3+4i {
		t.Errorf("MulVec = %v", got)
	}
}

func TestSubmatrix(t *testing.T) {
	a := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Submatrix(1, 1, 2, 2)
	want := FromRows([][]complex128{{5, 6}, {8, 9}})
	if !s.Equalish(want, 0) {
		t.Errorf("Submatrix = %v", s)
	}
}

func TestOuterAccumulate(t *testing.T) {
	m := New(2, 2)
	v := []complex128{1, 1i}
	m.OuterAccumulate(v, 0.5)
	// v·vᴴ = [[1, -i],[i, 1]], halved.
	want := FromRows([][]complex128{{0.5, -0.5i}, {0.5i, 0.5}})
	if !m.Equalish(want, 1e-15) {
		t.Errorf("OuterAccumulate = %v", m)
	}
	if !m.IsHermitian(1e-15) {
		t.Error("outer product should be Hermitian")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v", got)
	}
}

func randHermitian(n int, r *rand.Rand) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(r.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(r.NormFloat64(), r.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

func TestEigHermitianKnown2x2(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 1 and 3.
	a := FromRows([][]complex128{{2, 1i}, {-1i, 2}})
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-1) > 1e-12 || math.Abs(e.Values[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [1 3]", e.Values)
	}
	checkEig(t, a, e, 1e-12)
}

func TestEigHermitianDiagonal(t *testing.T) {
	a := FromRows([][]complex128{{5, 0}, {0, -2}})
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]+2) > 1e-14 || math.Abs(e.Values[1]-5) > 1e-14 {
		t.Errorf("eigenvalues = %v, want [-2 5]", e.Values)
	}
}

func TestEigHermitianZero(t *testing.T) {
	a := New(3, 3)
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Errorf("zero matrix eigenvalue = %v", v)
		}
	}
}

func TestEigHermitianRejectsNonHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if _, err := EigHermitian(a); err == nil {
		t.Error("expected ErrNotHermitian")
	}
	b := New(2, 3)
	if _, err := EigHermitian(b); err == nil {
		t.Error("expected error for non-square")
	}
}

// checkEig verifies the three eigendecomposition invariants:
// A·V = V·Λ, VᴴV = I, and ascending eigenvalue order.
func checkEig(t *testing.T, a *Matrix, e Eig, tol float64) {
	t.Helper()
	n := a.Rows
	// Residual per eigenpair.
	for k := 0; k < n; k++ {
		v := e.Vectors.Col(k)
		av := a.MulVec(v)
		var resid float64
		for i := range av {
			d := av[i] - complex(e.Values[k], 0)*v[i]
			resid += real(d)*real(d) + imag(d)*imag(d)
		}
		if math.Sqrt(resid) > tol*math.Max(1, a.FrobeniusNorm()) {
			t.Errorf("eigenpair %d residual %g too large", k, math.Sqrt(resid))
		}
	}
	// Orthonormality.
	vhv := e.Vectors.H().Mul(e.Vectors)
	if !vhv.Equalish(Identity(n), 1e-10) {
		t.Error("VᴴV ≠ I")
	}
	// Ordering.
	for k := 1; k < n; k++ {
		if e.Values[k] < e.Values[k-1]-1e-12 {
			t.Errorf("eigenvalues not ascending: %v", e.Values)
		}
	}
}

func TestEigHermitianRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(15) // up to 16×16, the two-WARP maximum
		a := randHermitian(n, r)
		e, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkEig(t, a, e, 1e-10)
		// Trace equals the eigenvalue sum.
		var tr, sum float64
		for i := 0; i < n; i++ {
			tr += real(a.At(i, i))
			sum += e.Values[i]
		}
		if math.Abs(tr-sum) > 1e-8*math.Max(1, math.Abs(tr)) {
			t.Errorf("trial %d: trace %g ≠ eigenvalue sum %g", trial, tr, sum)
		}
	}
}

func TestEigHermitianPSDRankOne(t *testing.T) {
	// A rank-one correlation-like matrix v·vᴴ must have one positive
	// eigenvalue equal to ‖v‖² and the rest zero.
	v := []complex128{1, 2i, -1 + 1i, 0.5}
	a := New(4, 4)
	a.OuterAccumulate(v, 1)
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	norm2 := VecNorm(v) * VecNorm(v)
	if math.Abs(e.Values[3]-norm2) > 1e-10 {
		t.Errorf("top eigenvalue = %v, want %v", e.Values[3], norm2)
	}
	for k := 0; k < 3; k++ {
		if math.Abs(e.Values[k]) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want 0", k, e.Values[k])
		}
	}
}

func TestVecDotNorm(t *testing.T) {
	a := []complex128{1, 1i}
	b := []complex128{1i, 1}
	// ⟨a,b⟩ = conj(1)·i + conj(i)·1 = i − i = 0.
	if got := VecDot(a, b); cmplx.Abs(got) > 1e-15 {
		t.Errorf("VecDot = %v", got)
	}
	if got := VecNorm(a); math.Abs(got-math.Sqrt2) > 1e-15 {
		t.Errorf("VecNorm = %v", got)
	}
}

func BenchmarkEigHermitian8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(8, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigHermitian(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randHermitian(8, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mul(a)
	}
}
