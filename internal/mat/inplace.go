package mat

// In-place / into variants of the allocating Matrix operations, plus
// the eigendecomposition workspace. These exist for one reason: the
// MUSIC pipeline runs the same tiny (≤16×16) linear algebra for every
// frame of every client, and at production rates the per-frame garbage
// — not the arithmetic — dominates. Every function here performs
// arithmetic identical (bit for bit) to its allocating counterpart; the
// only difference is where the result lands.

import (
	"fmt"
	"math/cmplx"
)

// Zero sets every element of m to zero and returns the receiver.
func (m *Matrix) Zero() *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// CopyInto copies src into dst, which must have the same shape.
func (dst *Matrix) CopyInto(src *Matrix) *Matrix {
	dst.mustSameShape(src)
	copy(dst.Data, src.Data)
	return dst
}

// ReuseMatrix returns m resized to rows×cols, reusing its backing
// storage when capacity allows and allocating otherwise. A nil m
// allocates fresh. Contents are unspecified after the call; use Zero
// when the caller needs a clean slate.
func ReuseMatrix(m *Matrix, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %d×%d", rows, cols))
	}
	if m == nil {
		return New(rows, cols)
	}
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]complex128, need)
	} else {
		m.Data = m.Data[:need]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// IdentityInto overwrites the square matrix m with the identity and
// returns it.
func IdentityInto(m *Matrix) *Matrix {
	if m.Rows != m.Cols {
		panic("mat: IdentityInto needs a square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
	return m
}

// MulInto computes a·b into dst and returns dst. dst must be
// a.Rows×b.Cols and must not alias a or b. The accumulation order
// matches Mul exactly, so results are bit-identical.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto dst is %d×%d, need %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if dst == a || dst == b {
		panic("mat: MulInto dst aliases an operand")
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			row := b.Data[k*b.Cols:]
			out := dst.Data[i*b.Cols:]
			for j := 0; j < b.Cols; j++ {
				out[j] += av * row[j]
			}
		}
	}
	return dst
}

// HInto writes the Hermitian (conjugate) transpose of m into dst and
// returns dst. dst must be m.Cols×m.Rows and must not alias m.
func HInto(dst, m *Matrix) *Matrix {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("mat: HInto dst is %d×%d, need %d×%d", dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	if dst == m {
		panic("mat: HInto dst aliases the operand")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return dst
}

// EigWorkspace holds every buffer EigHermitianWS needs, so repeated
// decompositions of same-order matrices run with zero steady-state
// allocations. The zero value is ready to use; buffers grow on demand
// and are reused across calls, including across different matrix
// orders (the backing arrays keep their largest-seen capacity).
//
// The Eig returned by EigHermitianWS aliases the workspace's buffers:
// it is valid only until the next call with the same workspace. Callers
// that need the result to survive must copy it out.
type EigWorkspace struct {
	w, v, vecs *Matrix
	vals       []float64
	svals      []float64
	idx        []int

	// Packed split re/im planes for the packed Jacobi kernel
	// (eig_packed.go). Row-major n×n, grown on demand like the complex
	// buffers above.
	wre, wim []float64
	vre, vim []float64
}

// sortedVals returns the length-n buffer that receives the sorted
// eigenvalues (distinct from vals, which holds the unsorted diagonal).
func (ws *EigWorkspace) sortedVals(n int) []float64 {
	if cap(ws.svals) < n {
		ws.svals = make([]float64, n)
	}
	ws.svals = ws.svals[:n]
	return ws.svals
}

func (ws *EigWorkspace) ensure(n int) {
	ws.w = ReuseMatrix(ws.w, n, n)
	ws.v = ReuseMatrix(ws.v, n, n)
	ws.ensureShared(n)
}

// ensureShared sizes the buffers both solver paths use (sorted output,
// permutation scratch) without touching the path-specific state.
func (ws *EigWorkspace) ensureShared(n int) {
	ws.vecs = ReuseMatrix(ws.vecs, n, n)
	if cap(ws.vals) < n {
		ws.vals = make([]float64, n)
	} else {
		ws.vals = ws.vals[:n]
	}
	if cap(ws.idx) < n {
		ws.idx = make([]int, n)
	} else {
		ws.idx = ws.idx[:n]
	}
}

// ensurePacked sizes the split-plane buffers for the packed Jacobi
// kernel plus the shared output scratch. It deliberately skips the
// complex w/v work matrices the reference path uses, so the hot path
// does not pay for buffers it never reads.
func (ws *EigWorkspace) ensurePacked(n int) {
	ws.wre = growFloats(ws.wre, n*n)
	ws.wim = growFloats(ws.wim, n*n)
	ws.vre = growFloats(ws.vre, n*n)
	ws.vim = growFloats(ws.vim, n*n)
	ws.ensureShared(n)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
